"""Cost-model ranking accuracy + tuned-profile serving benchmark.

``repro tune`` is only worth shipping if (a) the calibrated roofline
ranks knob configurations the way the machine actually ranks them, and
(b) serving with the emitted profile is at least as fast as the built-in
defaults.  This benchmark measures both on one workload:

* **ranking accuracy** — run the full tune loop, then measure *every*
  model-ranked candidate (>= 4 configs spanning ``mac_threads`` x
  ``mac_col_block`` x ``temporal_mode``) and report Spearman rank
  correlation plus top-1 agreement (:func:`rank_agreement`'s near-tie
  tolerance, because on a tied machine — one core — strict argmin
  equality is a coin flip the model need not call);
* **tuned-vs-default serving throughput** — sequential requests through
  :class:`repro.serve.StencilService` with and without the emitted
  profile; the tuner cross-checks its winner against real measurements,
  so tuned must never lose materially;
* **bit-identity on the measured traffic** — tuned knobs steer
  parallelism and batching only, never numerics (blocking at every core
  count).

The accuracy gates (rank correlation >= 0.8, top-1 agreement, tuned >=
~default) arm where ``os.cpu_count() >= 2`` — on one core the knob axis
collapses to near-ties and micro-benchmark noise decides the ordering —
with a best-of-2 retry against shared-runner noise, like the MAC-threads
gate.  Results append to ``BENCH_costmodel.json``.

Standalone::

    PYTHONPATH=src python benchmarks/bench_costmodel.py
    PYTHONPATH=src python benchmarks/bench_costmodel.py --smoke --out BENCH_costmodel.json

or under pytest (runs the gate)::

    PYTHONPATH=src python -m pytest benchmarks/bench_costmodel.py -s
"""

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.costmodel import (
    TunedProfile,
    rank_agreement,
    rank_correlation,
)
from repro.serve import StencilService
from repro.serve.tuning import measure_batch_ms, tune_profile
from repro.stencil import Grid, make_box_kernel

#: where ranking-accuracy + tuned-serving records accumulate (repo root)
BENCH_COSTMODEL_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_costmodel.json"
)


def _serve_rps(spec, grids, profile, n_requests: int):
    """Sequential single-request throughput, with/without the profile."""
    with StencilService(
        workers=1, max_wait_s=0.0, tuned_profile=profile
    ) as svc:
        svc.run(spec, grids[0])  # warm the plan cache
        t0 = time.perf_counter()
        outs = [
            svc.run(spec, grids[i % len(grids)]) for i in range(n_requests)
        ]
        elapsed = time.perf_counter() - t0
        stats = svc.stats()
    assert stats.telemetry.errors == 0
    return n_requests / elapsed, outs


def bench_costmodel(
    *,
    size=(64, 64),
    radius: int = 2,
    batch_sizes=(1, 4),
    repeats: int = 3,
    serve_requests: int = 24,
    seed: int = 2026,
) -> dict:
    """One tune-loop + full-grid cross-check + serving comparison record."""
    cores = os.cpu_count() or 1
    rng = np.random.default_rng(seed)
    spec = make_box_kernel(2, radius, rng)

    report = tune_profile(
        spec,
        tuple(size),
        batch_sizes=tuple(batch_sizes),
        top_k=4,
        repeats=repeats,
        seed=seed,
    )
    # artifact sanity before anything is recorded
    TunedProfile.validate(report.profile.to_dict())

    # measure EVERY ranked candidate (the tune loop itself only
    # cross-checks the top-K) for the full model-vs-machine comparison
    cap = max(batch_sizes)
    predicted, measured, labels = [], [], []
    for cand in report.candidates:
        b = min(cand.config.max_batch_size, cap)
        ms = measure_batch_ms(
            spec,
            tuple(size),
            cand.config,
            batch=b,
            repeats=repeats,
            seed=seed,
        )
        predicted.append(cand.predicted_ms)
        measured.append(ms / b)
        labels.append(cand.config.label)
    corr = rank_correlation(predicted, measured)
    top1 = rank_agreement(predicted, measured)

    grids = [Grid.random(tuple(size), rng) for _ in range(4)]
    default_rps, outs_default = _serve_rps(
        spec, grids, None, serve_requests
    )
    tuned_rps, outs_tuned = _serve_rps(
        spec, grids, report.profile, serve_requests
    )
    identical = all(
        a.tobytes() == b.tobytes()
        for a, b in zip(outs_default, outs_tuned)
    )

    return {
        "config": {
            "shape": f"2D r={radius} box",
            "grid": list(size),
            "batch_sizes": list(batch_sizes),
            "repeats": repeats,
            "serve_requests": serve_requests,
        },
        "cpu_count": cores,
        "fit": {
            "rel_rmse": report.calibration.rel_rmse,
            "n_samples": report.calibration.n_samples,
        },
        "ranking": {
            "n_candidates": len(labels),
            "labels": labels,
            "predicted_ms_per_request": predicted,
            "measured_ms_per_request": measured,
            "rank_correlation": corr,
            "top1_agreement": top1,
        },
        "winner": report.winner.label,
        "default": report.default.config.label,
        "serving": {
            "default_rps": default_rps,
            "tuned_rps": tuned_rps,
            "ratio": tuned_rps / default_rps,
        },
        "bit_identical_on_measured_traffic": identical,
        "gate_armed": cores >= 2,
    }


def append_bench_record(doc: dict, path: Path = BENCH_COSTMODEL_PATH) -> None:
    """Append one record to the accumulating JSON document."""
    records = []
    if path.exists():
        try:
            records = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            records = []
    if not isinstance(records, list):
        records = [records]
    records.append(doc)
    path.write_text(json.dumps(records, indent=2) + "\n")


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------


def _gates_pass(doc: dict) -> bool:
    """The armed-gate predicate, used to decide the best-of-2 retry."""
    r = doc["ranking"]
    return (
        r["rank_correlation"] >= 0.8
        and r["top1_agreement"]
        and doc["serving"]["ratio"] >= 0.95
    )


@pytest.mark.paper_artifact("serving")
def test_costmodel_ranking(report):
    """Model-vs-machine ranking + tuned-vs-default serving, recorded to
    BENCH_costmodel.json.

    Bit-identity, candidate coverage (>= 4 configs) and a loose
    tuned-not-materially-slower floor are blocking at every core count;
    the accuracy gates (rank correlation >= 0.8, top-1 agreement, tuned
    >= 0.95x default) arm where ``os.cpu_count() >= 2``, best of two
    runs against shared-runner noise.
    """
    doc = bench_costmodel()
    if doc["gate_armed"] and not _gates_pass(doc):
        retry = bench_costmodel(seed=2027)
        if retry["ranking"]["rank_correlation"] > (
            doc["ranking"]["rank_correlation"]
        ):
            doc = retry
    append_bench_record(doc)
    report(
        "Cost model: ranking accuracy and tuned-profile serving",
        json.dumps(doc, indent=2),
    )
    assert doc["bit_identical_on_measured_traffic"]
    assert doc["ranking"]["n_candidates"] >= 4
    # the winner is cross-checked by measurement, so even where the
    # accuracy gates stay disarmed the tuned service must not lose badly
    # (slack for scheduler jitter on tiny tied machines)
    assert doc["serving"]["ratio"] >= 0.8, doc["serving"]
    if doc["gate_armed"]:
        assert doc["ranking"]["rank_correlation"] >= 0.8, doc["ranking"]
        assert doc["ranking"]["top1_agreement"], doc["ranking"]
        assert doc["serving"]["ratio"] >= 0.95, doc["serving"]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--size", type=int, default=64,
                    help="square 2D grid side length")
    ap.add_argument("--radius", type=int, default=2)
    ap.add_argument("--batch-sizes", default="1,4",
                    help="comma-separated probe batch sizes")
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--requests", type=int, default=24,
                    help="sequential serving requests per arm")
    ap.add_argument("--seed", type=int, default=2026)
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="small fast configuration for CI smoke jobs",
    )
    ap.add_argument(
        "--out",
        default=None,
        help="append the record here instead of BENCH_costmodel.json",
    )
    args = ap.parse_args(argv)
    size = 32 if args.smoke else args.size
    doc = bench_costmodel(
        size=(size, size),
        radius=args.radius,
        batch_sizes=tuple(
            int(b) for b in args.batch_sizes.split(",") if b.strip()
        ),
        repeats=2 if args.smoke else args.repeats,
        serve_requests=8 if args.smoke else args.requests,
        seed=args.seed,
    )
    append_bench_record(
        doc, BENCH_COSTMODEL_PATH if args.out is None else Path(args.out)
    )
    print(json.dumps(doc, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
