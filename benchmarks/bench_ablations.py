"""Design-choice ablations beyond the paper's Figure 12.

DESIGN.md calls out three tunables the paper fixes by rule; these benches
quantify why the rules are right:

* **L sweep** — §3.1.1 sets L = 2r+2 for exactly-50% sparsity; larger L
  loses SpTC benefit (sparsity > 50% wastes compressed slots), smaller L
  is structurally impossible.
* **Kernel-matrix packing** — Figure 8's transaction savings vs tile count.
* **Metadata packing** — Figure 9's register savings vs group size.
"""

import numpy as np
import pytest

from repro.core import (
    Spider,
    build_kernel_matrix,
    choose_L,
    kernel_load_audit,
    kernel_matrix_sparsity,
    plan_metadata_packing,
)
from repro.core.encoding import encode_kernel_row
from repro.stencil import Grid, make_box_kernel, naive_stencil


@pytest.mark.paper_artifact("ablation-L")
def test_L_choice_sparsity_sweep(report):
    """Sparsity ratio as L varies: only L = 2r+2 pins exactly 50%."""
    lines = [f"{'r':>3}{'L':>5}{'sparsity':>11}{'SpTC-exploitable':>18}"]
    for r in (1, 2, 3, 7):
        for dL in (0, 2, 4, 8):
            L = choose_L(r) + dL
            s = kernel_matrix_sparsity(r, L)
            exploitable = "yes (exact)" if s == 0.5 else ("wasted" if s > 0.5 else "no")
            lines.append(f"{r:>3}{L:>5}{s:>11.3f}{exploitable:>18}")
            assert s >= 0.5
    report("Ablation: L vs kernel-matrix sparsity (§3.1.1)", "\n".join(lines))


@pytest.mark.paper_artifact("ablation-L")
def test_larger_L_increases_parameter_storage(rng):
    """Oversizing L inflates the compressed parameter footprint."""
    row = rng.standard_normal(7)  # r = 3
    base = encode_kernel_row(row)  # L = 8
    big = encode_kernel_row(row, L=16)
    assert big.parameter_elements() > base.parameter_elements()
    # both remain functionally exact
    spec = make_box_kernel(1, 3, rng)
    g = Grid.random((80,), rng)
    assert np.allclose(Spider(spec).run(g), naive_stencil(spec, g))


@pytest.mark.paper_artifact("ablation-packing")
def test_packing_transaction_savings(report):
    lines = [f"{'k-tiles':>8}{'unpacked tx':>13}{'packed tx':>11}{'saving':>9}"]
    for tiles in (1, 2, 4, 8):
        unpacked, packed = kernel_load_audit(tiles)
        lines.append(
            f"{tiles:>8}{unpacked.transactions:>13}{packed.transactions:>11}"
            f"{unpacked.transactions / packed.transactions:>8.1f}x"
        )
        assert packed.transactions < unpacked.transactions
    report("Ablation: Figure-8 kernel-matrix packing", "\n".join(lines))


@pytest.mark.paper_artifact("ablation-packing")
def test_metadata_register_savings(report):
    lines = [f"{'mmas':>6}{'group':>7}{'naive regs':>12}{'packed regs':>13}"]
    for num_mma in (2, 4):
        for group in (1, 2, 4):
            plan = plan_metadata_packing(num_mma, group)
            lines.append(
                f"{num_mma:>6}{plan.group_size:>7}"
                f"{plan.registers_per_thread_naive:>12}"
                f"{plan.registers_per_thread_packed:>13}"
            )
            assert plan.registers_per_thread_packed <= plan.registers_per_thread_naive
    report("Ablation: Figure-9 metadata packing", "\n".join(lines))


def test_bench_encode_scaling_with_radius(benchmark, rng):
    """AOT encoding cost grows with the kernel-matrix footprint only —
    never with the problem size (§4.2's O(1) claim)."""
    rows = [rng.standard_normal(2 * r + 1) for r in (1, 3, 7, 11)]

    def encode_all():
        return [encode_kernel_row(row) for row in rows]

    encs = benchmark(encode_all)
    assert len(encs) == 4
