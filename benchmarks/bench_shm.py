"""Shared-memory vs queue transport benchmark for the process backend.

PR 3's measurements identified the mp-queue grid/result copy as the
dominant per-request cost of the process path in the IPC-bound regime
(single core, where compute cannot overlap and every pickled byte is pure
overhead).  This benchmark drives one deterministic closed-loop trace of
low-radius 2D stencils on grids large enough that transport — not the
MAC — dominates, through ``transport="queue"`` and ``transport="shm"``,
and records:

* requests/s for both transports and the shm/queue speedup;
* piped IPC payload bytes for both (queue: grids + results; shm: 0);
* **byte-identity re-asserted on the measured traffic** — the speedup is
  only meaningful if the bits are the same, so every shm result is
  compared to its queue counterpart before the record is written.

The pytest entry asserts the >= 1.5x single-core win (IPC-dominated
regime; this gate is the shm analogue of the thread-vs-process multi-core
gate in ``bench_serve.py``, which stays armed unchanged).

Standalone::

    PYTHONPATH=src python benchmarks/bench_shm.py --requests 400
    PYTHONPATH=src python benchmarks/bench_shm.py --smoke --out BENCH_shm.json

or under pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_shm.py -s
"""

import argparse
import json
import os
import time
from pathlib import Path

import pytest

from repro.serve import StencilService
from repro.stencil.workloads import closed_loop_stream, serving_workloads

#: where transport comparison records accumulate (repo root)
BENCH_SHM_PATH = Path(__file__).resolve().parent.parent / "BENCH_shm.json"

#: radius-1 star/box stencils: minimal MAC work per byte moved, which is
#: exactly the regime where transport cost shows (and the paper-relevant
#: serving mix is dominated by small kernels anyway)
BENCH_SHAPES = ["heat2d", "blur2d"]


def run_transport(requests, *, transport, workers=2, max_batch_size=8,
                  max_wait_s=0.002, keep_results=False):
    """Serve one trace through the process backend with one transport."""
    with StencilService(
        workers=workers,
        max_batch_size=max_batch_size,
        max_wait_s=max_wait_s,
        backend="process",
        transport=transport,
    ) as svc:
        t0 = time.perf_counter()
        handles = svc.submit_many((r.spec, r.grid) for r in requests)
        svc.drain()
        elapsed = time.perf_counter() - t0
        stats = svc.stats()
    t = stats.telemetry
    doc = {
        "transport": transport,
        "throughput_rps": len(requests) / elapsed,
        "elapsed_s": elapsed,
        "p50_ms": t.latency_ms["p50"],
        "p99_ms": t.latency_ms["p99"],
        "ipc_payload_bytes": t.ipc_payload_bytes,
        "ipc_bytes_per_request": t.ipc_bytes_per_request,
        "mean_batch_occupancy": t.occupancy["mean"],
        "errors": t.errors,
    }
    results = [h.result() for h in handles] if keep_results else None
    return doc, results


def bench_transports(
    n_requests: int = 400,
    *,
    workers: int = 2,
    max_batch_size: int = 8,
    max_wait_s: float = 0.002,
    size_2d=(192, 192),
    seed: int = 2026,
) -> dict:
    """Queue-vs-shm comparison on one trace, identity-checked.

    Grids are sized so the per-request payload (~300 KB at the default
    192x192 float64) dwarfs the radius-1 MAC — the IPC-dominated regime
    the ROADMAP names.  Both transports serve the *same* deterministic
    trace and every result pair is compared byte-for-byte before the
    record is emitted.
    """
    workloads = serving_workloads(BENCH_SHAPES, size_2d=size_2d, seed=seed)
    requests = list(closed_loop_stream(workloads, n_requests, seed=seed))
    warmup = requests[: min(80, len(requests))]
    results = {}
    outs = {}
    for transport in ("queue", "shm"):
        run_transport(
            warmup,
            transport=transport,
            workers=workers,
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
        )
        results[transport], outs[transport] = run_transport(
            requests,
            transport=transport,
            workers=workers,
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
            keep_results=True,
        )
    identical = all(
        a.tobytes() == b.tobytes()
        for a, b in zip(outs["queue"], outs["shm"])
    )
    return {
        "config": {
            "requests": n_requests,
            "shapes": BENCH_SHAPES,
            "workers": workers,
            "max_batch_size": max_batch_size,
            "max_wait_ms": max_wait_s * 1e3,
            "size_2d": list(size_2d),
            "payload_bytes_per_grid": int(
                size_2d[0] * size_2d[1] * 8
            ),
        },
        "cpu_count": os.cpu_count(),
        "queue_transport": results["queue"],
        "shm_transport": results["shm"],
        "shm_vs_queue_speedup": (
            results["shm"]["throughput_rps"]
            / results["queue"]["throughput_rps"]
        ),
        "bit_identical_on_measured_traffic": identical,
    }


def append_bench_record(doc: dict, path: Path = BENCH_SHM_PATH) -> None:
    """Append one comparison record to the accumulating JSON document."""
    records = []
    if path.exists():
        try:
            records = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            records = []
    if not isinstance(records, list):
        records = [records]
    records.append(doc)
    path.write_text(json.dumps(records, indent=2) + "\n")


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------


@pytest.mark.paper_artifact("serving")
def test_shm_transport_speedup(report):
    """Shm-vs-queue throughput, recorded to BENCH_shm.json.

    Byte-identity on the measured traffic is a blocking correctness
    assertion; the >= 1.5x single-core speedup takes the best of two runs
    against shared-runner noise (the IPC-dominated regime exists on any
    core count — compute can only hide transport cost when cores are
    spare, so single core is the *conservative* setting).
    """
    doc = bench_transports(400)
    if doc["shm_vs_queue_speedup"] < 1.5:
        retry = bench_transports(400)
        if retry["shm_vs_queue_speedup"] > doc["shm_vs_queue_speedup"]:
            doc = retry
    append_bench_record(doc)
    report(
        "Process-backend transports: shm vs queue",
        json.dumps(doc, indent=2),
    )
    assert doc["queue_transport"]["errors"] == 0
    assert doc["shm_transport"]["errors"] == 0
    assert doc["bit_identical_on_measured_traffic"]
    assert doc["shm_transport"]["ipc_payload_bytes"] == 0
    assert doc["queue_transport"]["ipc_payload_bytes"] > 0
    assert doc["shm_vs_queue_speedup"] >= 1.5, doc["shm_vs_queue_speedup"]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--requests", type=int, default=400)
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--batch", type=int, default=8)
    ap.add_argument("--wait-ms", type=float, default=2.0)
    ap.add_argument("--size", type=int, default=192,
                    help="square 2D grid side length")
    ap.add_argument("--seed", type=int, default=2026)
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="small fast configuration for CI smoke jobs",
    )
    ap.add_argument(
        "--out",
        default=None,
        help="append the record here instead of the default BENCH_shm.json",
    )
    args = ap.parse_args(argv)
    n = 160 if args.smoke else args.requests
    size = 128 if args.smoke else args.size
    doc = bench_transports(
        n,
        workers=args.workers,
        max_batch_size=args.batch,
        max_wait_s=args.wait_ms / 1e3,
        size_2d=(size, size),
        seed=args.seed,
    )
    append_bench_record(
        doc, BENCH_SHM_PATH if args.out is None else Path(args.out)
    )
    print(json.dumps(doc, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
