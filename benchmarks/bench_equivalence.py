"""Mathematical-equivalence bench (§3.1/§3.2 claims) and transformation
overhead comparison (§4.2's offline-cost discussion).

Benchmarks SPIDER's O(1)-per-radius AOT compilation against baselines'
transformation work, and sweeps equivalence over every paper shape.
"""

import numpy as np
import pytest

from repro.baselines import LoRAStencilMethod, low_rank_pairs
from repro.core import Spider, encode_kernel_row
from repro.stencil import (
    PAPER_SHAPE_IDS,
    Grid,
    make_workload,
    naive_stencil,
)


@pytest.mark.paper_artifact("equivalence")
@pytest.mark.parametrize("shape_id", PAPER_SHAPE_IDS)
def test_equivalence_all_paper_shapes(rng, shape_id, report):
    scaled = (2048,) if shape_id.startswith("1D") else (48, 64)
    wl = make_workload(shape_id, scaled)
    g = wl.make_grid(rng)
    out = Spider(wl.spec).run(g)
    ref = naive_stencil(wl.spec, g)
    err = float(np.max(np.abs(out - ref)))
    assert err < 1e-9


def test_bench_spider_aot_compilation(benchmark, rng):
    """SPIDER's offline transformation: pure rule-based, O(1) in problem
    size (§4.2). Timed per kernel row."""
    row = rng.standard_normal(15)  # r = 7
    enc = benchmark(lambda: encode_kernel_row(row))
    assert enc.width == 32


def test_bench_lora_offline_decomposition(benchmark, rng):
    """LoRAStencil's offline low-rank decomposition (O(L^3) SVD)."""
    w = rng.standard_normal((15, 15))
    w = 0.5 * (w + w[::-1, ::-1])
    pairs = benchmark(lambda: low_rank_pairs(w))
    assert len(pairs) >= 1


def test_bench_spider_sweep_2d(benchmark, rng):
    wl = make_workload("Box-2D3R", (128, 128))
    g = wl.make_grid(rng)
    sp = Spider(wl.spec)
    out = benchmark(lambda: sp.run(g))
    assert out.shape == (128, 128)


def test_bench_spider_sweep_1d(benchmark, rng):
    wl = make_workload("1D1R", (1 << 16,))
    g = wl.make_grid(rng)
    sp = Spider(wl.spec)
    out = benchmark(lambda: sp.run(g))
    assert out.shape == g.shape


def test_bench_reference_sweep_2d(benchmark, rng):
    """Golden reference on the same workload, for context."""
    wl = make_workload("Box-2D3R", (128, 128))
    g = wl.make_grid(rng)
    out = benchmark(lambda: naive_stencil(wl.spec, g))
    assert out.shape == (128, 128)
