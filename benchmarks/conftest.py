"""Benchmark harness configuration.

Every ``bench_*`` module regenerates one of the paper's tables or figures:
it prints the paper-style rows/series (captured with ``-s`` or in the
pytest summary) and asserts the reproduction's shape claims, while
pytest-benchmark times the underlying computation.
"""

import numpy as np
import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper_artifact(name): which table/figure this regenerates"
    )


@pytest.fixture
def rng():
    return np.random.default_rng(2026)


@pytest.fixture(scope="session")
def report(request):
    """Print a paper artifact block so it survives in captured output."""

    def _report(title: str, body: str) -> None:
        bar = "=" * 78
        print(f"\n{bar}\n{title}\n{bar}\n{body}\n")

    return _report
