"""Legacy setup shim: lets ``pip install -e .`` work without the ``wheel``
package in offline environments (metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
