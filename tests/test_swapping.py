"""Tests for the strided swapping transformation (§3.1.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernel_matrix import (
    build_kernel_matrix,
    choose_L,
    padded_width,
    structural_mask,
)
from repro.core.swapping import (
    apply_column_swap,
    apply_row_swap,
    strided_permutation,
    swap_displacement,
)
from repro.sptc.formats import is_24_sparse


class TestPermutation:
    def test_involution(self):
        for L in (4, 6, 8, 16):
            perm = strided_permutation(L, 2 * L + 8)
            assert np.array_equal(perm[perm], np.arange(len(perm)))

    def test_even_columns_fixed(self):
        perm = strided_permutation(8, 16)
        for j in range(0, 8, 2):
            assert perm[j] == j

    def test_odd_columns_swapped(self):
        perm = strided_permutation(8, 16)
        for j in range(1, 8, 2):
            assert perm[j] == j + 8
            assert perm[j + 8] == j

    def test_tail_identity(self):
        perm = strided_permutation(4, 16)
        assert np.array_equal(perm[8:], np.arange(8, 16))

    def test_width_validation(self):
        with pytest.raises(ValueError):
            strided_permutation(8, 12)

    def test_L_validation(self):
        with pytest.raises(ValueError):
            strided_permutation(1, 16)


class Test24Compliance:
    @pytest.mark.parametrize("r", list(range(1, 17)))
    def test_swapped_kernel_matrix_is_24(self, r, rng):
        """The paper's central structural claim, for every radius."""
        row = rng.standard_normal(2 * r + 1)
        # avoid accidental zeros hiding structure: use the mask
        mask = structural_mask(r).astype(float)
        swapped_structure = apply_column_swap(mask, choose_L(r))
        assert is_24_sparse(swapped_structure), f"violation at r={r}"

    def test_unswapped_generally_violates(self, rng):
        # sanity: the swap is actually needed (r=3 band of 7 in 16 cols)
        mask = structural_mask(3).astype(float)
        assert not is_24_sparse(mask)

    @pytest.mark.parametrize("r", [1, 2, 3, 5, 7])
    def test_even_parity_swap_also_complies(self, r):
        """Paper ambiguity (§3.1.2 says odd columns, Figure 6 says
        i = 0, 2, …): the band-interval structure makes *either* parity
        2:4-compliant; we implement the odd convention of §3.1.2."""
        mask = structural_mask(r).astype(float)
        L = choose_L(r)
        width = mask.shape[1]
        perm = np.arange(width)
        even = np.arange(0, L, 2)
        perm[even] = even + L
        perm[even + L] = even
        assert is_24_sparse(mask[:, perm])


class TestEquivalence:
    @given(r=st.integers(1, 8), seed=st.integers(0, 2**31), cols=st.integers(1, 9))
    @settings(max_examples=40, deadline=None)
    def test_swap_preserves_product(self, r, seed, cols):
        """(K P)(P X) == K X — the mathematical-equivalence core."""
        rng = np.random.default_rng(seed)
        row = rng.standard_normal(2 * r + 1)
        k = build_kernel_matrix(row)
        L = choose_L(r)
        x = rng.standard_normal((k.shape[1], cols))
        ks = apply_column_swap(k, L)
        xs = apply_row_swap(x, L)
        assert np.allclose(ks @ xs, k @ x)

    def test_row_swap_self_inverse(self, rng):
        x = rng.standard_normal((16, 5))
        assert np.allclose(apply_row_swap(apply_row_swap(x, 8), 8), x)


class TestDisplacement:
    def test_values_in_0_pm_L(self):
        d = swap_displacement(8, 16)
        assert set(np.unique(d)).issubset({-8, 0, 8})

    def test_paper_pm16_for_r7(self):
        # Box-2D7R: L = 16, displacements are ±16 (the 16·(−1)^k term)
        d = swap_displacement(16, padded_width(7))
        assert set(np.unique(d)) == {-16, 0, 16}

    def test_consistency_with_permutation(self):
        for L in (4, 8, 16):
            width = max(2 * L, 16)
            perm = strided_permutation(L, width)
            d = swap_displacement(L, width)
            assert np.array_equal(perm, np.arange(width) + d)
