"""Tests for the table/figure generators and their text rendering."""

import numpy as np
import pytest

from repro.analysis.figures import (
    figure10,
    figure11,
    figure12,
    format_figure10,
    format_figure11,
    format_figure12,
)
from repro.analysis.tables import (
    TABLE1_FORMULAS,
    format_table2,
    format_table3,
    table2_rows,
    table3_rows,
)


class TestTable1:
    def test_all_methods_documented(self):
        assert set(TABLE1_FORMULAS) == {
            "LowerBound",
            "ConvStencil",
            "TCStencil",
            "LoRAStencil",
            "SPIDER",
        }
        for formulas in TABLE1_FORMULAS.values():
            assert set(formulas) == {"computation", "input", "parameter"}


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        return table3_rows(grid_shape=(18, 48))

    def test_zero_cost_claims(self, rows):
        without, with_swap = rows
        # Table 3's three rows: identical throughput, instructions, duration
        assert with_swap.memory_throughput_rel == pytest.approx(1.0, abs=0.01)
        assert with_swap.instruction_count == without.instruction_count
        assert with_swap.duration_rel == pytest.approx(1.0, abs=0.01)

    def test_formatting(self, rows):
        text = format_table3(rows)
        assert "Row Swapping" in text
        assert "Instruction Counts" in text


class TestTableFormatting:
    def test_table2_text(self):
        text = format_table2(table2_rows())
        assert "SPIDER" in text and "56.00" in text
        assert "286.72" in text  # TCStencil computation


class TestFigureFormatting:
    def test_figure10_text(self):
        text = format_figure10(figure10())
        assert "SPIDER" in text
        assert "average speedups" in text

    def test_figure11_text(self):
        text = format_figure11(figure11("Box-2D1R"))
        assert "512" in text and "10240" in text

    def test_figure12_text(self):
        text = format_figure12(figure12())
        assert "1280" in text
        assert "stage gains" in text

    def test_figure11_shapes(self):
        s = figure11("1D2R")
        assert len(s.sizes) == 6
        for series in s.gstencils.values():
            assert len(series) == 6
