"""Tests for coalescing and bank-conflict models."""

import numpy as np
import pytest

from repro.gpu.memory import (
    AccessAudit,
    audit_warp_access,
    coalesced_transactions,
    shared_bank_conflicts,
)


class TestCoalescing:
    def test_fully_coalesced_warp(self):
        # 32 lanes × 4-byte words, contiguous → 4 sectors of 32 B
        addrs = np.arange(32) * 4
        assert coalesced_transactions(addrs) == 4

    def test_strided_access_explodes(self):
        # 128-byte stride: every lane its own sector
        addrs = np.arange(32) * 128
        assert coalesced_transactions(addrs) == 32

    def test_broadcast_single_sector(self):
        assert coalesced_transactions([0] * 32) == 1

    def test_inactive_lanes_ignored(self):
        assert coalesced_transactions([-1] * 32) == 0

    def test_bad_transaction_size(self):
        with pytest.raises(ValueError):
            coalesced_transactions([0], transaction_bytes=0)


class TestBankConflicts:
    def test_conflict_free_contiguous(self):
        addrs = np.arange(32) * 4  # one word per bank
        assert shared_bank_conflicts(addrs) == 0

    def test_same_word_broadcast_free(self):
        assert shared_bank_conflicts([64] * 32) == 0

    def test_two_way_conflict(self):
        # lanes hit banks 0..15 twice at different words -> 16 extra cycles
        addrs = np.concatenate([np.arange(16) * 4, np.arange(16) * 4 + 128])
        assert shared_bank_conflicts(addrs) == 16

    def test_worst_case_32_way(self):
        # all lanes same bank, all different words
        addrs = np.arange(32) * 128  # stride 32 words = bank 0 every time
        assert shared_bank_conflicts(addrs) == 31


class TestAudit:
    def test_audit_shape_check(self):
        with pytest.raises(ValueError):
            audit_warp_access(np.zeros(32))

    def test_audit_counts(self):
        addrs = np.arange(32).reshape(32, 1)  # contiguous fp16 elements
        a = audit_warp_access(addrs, elem_bytes=2)
        assert a.num_accesses == 1
        assert a.bytes_moved == 64
        assert a.transactions == 2  # 64 bytes / 32-byte sectors
        assert a.conflict_free

    def test_merge(self):
        a = AccessAudit(1, 2, 0, 64)
        b = AccessAudit(2, 3, 1, 128)
        m = a.merge(b)
        assert m.num_accesses == 3
        assert m.transactions == 5
        assert m.bank_conflicts == 1
        assert m.bytes_moved == 192
        assert not m.conflict_free
