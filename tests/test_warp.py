"""Tests for the warp execution context."""

import numpy as np
import pytest

from repro.sptc.warp import Warp, default_b_row_offset
from repro.sptc import fragments as fr


class TestDefaultOffset:
    def test_matches_fragment_layout(self):
        for lane in range(32):
            rows = fr.b_fragment_rows_paper(lane)
            for i in range(4):
                assert default_b_row_offset(lane, i) == rows[i]


class TestLoadBFragment:
    def test_identity_load(self, rng):
        smem = rng.standard_normal((16, 8))
        warp = Warp()
        regs, addrs = warp.load_b_fragment(smem, k_base=0, n_base=0)
        assert np.array_equal(fr.collect_b(regs), smem)
        assert (addrs >= 0).all()

    def test_out_of_range_reads_zero(self, rng):
        smem = rng.standard_normal((8, 8))  # shorter than 16 k-rows
        warp = Warp()
        regs, addrs = warp.load_b_fragment(smem, k_base=0, n_base=0)
        tile = fr.collect_b(regs)
        assert np.array_equal(tile[:8], smem)
        assert (tile[8:] == 0).all()
        assert (addrs[regs == 0].reshape(-1) <= addrs.max()).all()

    def test_n_base_offset(self, rng):
        smem = rng.standard_normal((16, 24))
        warp = Warp()
        regs, _ = warp.load_b_fragment(smem, k_base=0, n_base=8)
        assert np.array_equal(fr.collect_b(regs), smem[:, 8:16])

    def test_custom_offset_fn_permutes(self, rng):
        smem = rng.standard_normal((16, 8))
        perm = np.arange(16)
        perm[[1, 3]] = [3, 1]
        warp = Warp()

        def fn(lane, i):
            return int(perm[default_b_row_offset(lane, i)])

        regs, _ = warp.load_b_fragment(smem, k_base=0, n_base=0, row_offset_fn=fn)
        assert np.array_equal(fr.collect_b(regs), smem[perm])

    def test_instruction_accounting(self, rng):
        warp = Warp()
        warp.load_b_fragment(rng.standard_normal((16, 8)), k_base=0, n_base=0)
        assert warp.stream.count("lds") == 4  # one SIMT issue per element idx
        assert warp.stream.bytes_moved("lds") == 32 * 4 * 2


class TestStoreAcc:
    def test_store_adds_tile(self, rng):
        out = np.zeros((16, 8))
        tile = rng.standard_normal((16, 8))
        warp = Warp()
        warp.store_acc_fragment(out, fr.distribute_acc(tile), m_base=0, n_base=0)
        assert np.allclose(out, tile)
        assert warp.stream.count("stg") == 4

    def test_partial_tile_clipped(self, rng):
        out = np.zeros((10, 5))
        tile = rng.standard_normal((16, 8))
        warp = Warp()
        warp.store_acc_fragment(out, fr.distribute_acc(tile), m_base=0, n_base=0)
        assert np.allclose(out, tile[:10, :5])
