"""Tests for repro.stencil.spec."""

import numpy as np
import pytest

from repro.stencil.spec import (
    ShapeType,
    StencilSpec,
    box_mask,
    make_box_kernel,
    make_star_kernel,
    named_stencil,
    star_mask,
)


class TestMasks:
    def test_box_mask_all_true(self):
        m = box_mask(2, 2)
        assert m.shape == (5, 5)
        assert m.all()

    def test_star_mask_2d_count(self):
        # star footprint: 2*d*r + 1 points
        for r in (1, 2, 3):
            m = star_mask(2, r)
            assert int(m.sum()) == 4 * r + 1

    def test_star_mask_3d_count(self):
        for r in (1, 2):
            m = star_mask(3, r)
            assert int(m.sum()) == 6 * r + 1

    def test_star_mask_1d_equals_box(self):
        assert (star_mask(1, 3) == box_mask(1, 3)).all()

    def test_star_mask_centre_row_full(self):
        m = star_mask(2, 2)
        assert m[2, :].all()
        assert m[:, 2].all()

    def test_star_mask_corner_false(self):
        m = star_mask(2, 2)
        assert not m[0, 0]
        assert not m[4, 4]

    def test_bad_args(self):
        with pytest.raises(ValueError):
            star_mask(0, 1)
        with pytest.raises(ValueError):
            box_mask(2, -1)


class TestStencilSpec:
    def test_basic_construction(self, rng):
        spec = make_box_kernel(2, 2, rng)
        assert spec.side == 5
        assert spec.num_points == 25
        assert spec.dims == 2
        assert spec.radius == 2

    def test_weights_frozen(self, rng):
        spec = make_box_kernel(2, 1, rng)
        with pytest.raises(ValueError):
            spec.weights[0, 0] = 7.0

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            StencilSpec(ShapeType.BOX, 2, 2, np.ones((3, 3)))

    def test_star_with_corner_weight_rejected(self):
        w = np.zeros((3, 3))
        w[0, 0] = 1.0
        with pytest.raises(ValueError):
            StencilSpec(ShapeType.STAR, 2, 1, w)

    def test_nonfinite_rejected(self):
        w = np.ones((3, 3))
        w[1, 1] = np.nan
        with pytest.raises(ValueError):
            StencilSpec(ShapeType.BOX, 2, 1, w)

    def test_radius_zero_rejected(self):
        with pytest.raises(ValueError):
            StencilSpec(ShapeType.BOX, 1, 0, np.ones(1))

    def test_dims_validation(self):
        with pytest.raises(ValueError):
            StencilSpec(ShapeType.BOX, 4, 1, np.ones((3, 3, 3, 3)))

    def test_shape_type_validation(self):
        with pytest.raises(TypeError):
            StencilSpec("box", 2, 1, np.ones((3, 3)))

    def test_benchmark_id(self, rng):
        assert make_box_kernel(1, 2, rng).benchmark_id == "1D2R"
        assert make_box_kernel(2, 3, rng).benchmark_id == "Box-2D3R"
        assert make_star_kernel(2, 1, rng).benchmark_id == "Star-2D1R"

    def test_num_nonzero_star(self, rng):
        spec = make_star_kernel(2, 2, rng)
        assert spec.num_nonzero <= spec.num_points == 9

    def test_is_symmetric(self, rng):
        sym = make_box_kernel(2, 2, rng, symmetric=True)
        assert sym.is_symmetric
        w = np.arange(9, dtype=float).reshape(3, 3)
        asym = StencilSpec(ShapeType.BOX, 2, 1, w)
        assert not asym.is_symmetric

    def test_kernel_rows_shapes(self, rng):
        assert make_box_kernel(1, 2, rng).kernel_rows().shape == (1, 5)
        assert make_box_kernel(2, 2, rng).kernel_rows().shape == (5, 5)
        assert make_box_kernel(3, 1, rng).kernel_rows().shape == (9, 3)

    def test_flattened(self, rng):
        spec = make_box_kernel(2, 1, rng)
        assert spec.flattened().shape == (9,)
        assert np.allclose(spec.flattened().reshape(3, 3), spec.weights)

    def test_with_weights(self, rng):
        spec = make_box_kernel(2, 1, rng)
        new = spec.with_weights(np.zeros((3, 3)))
        assert new.radius == spec.radius
        assert np.all(new.weights == 0)


class TestNamedStencils:
    @pytest.mark.parametrize(
        "name",
        ["heat1d", "heat2d", "heat3d", "jacobi2d", "blur2d", "blur3d", "wave1d", "wave2d"],
    )
    def test_all_named_build(self, name):
        spec = named_stencil(name)
        assert spec.name == name

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            named_stencil("nonexistent")

    def test_heat2d_conserves_mass(self):
        # coefficients of the diffusion operator sum to 1
        assert abs(named_stencil("heat2d").weights.sum() - 1.0) < 1e-12

    def test_blur2d_normalized(self):
        assert abs(named_stencil("blur2d").weights.sum() - 1.0) < 1e-12
