"""Tests for kernel-matrix construction (§3.1.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernel_matrix import (
    build_kernel_matrix,
    choose_L,
    kernel_matrix_sparsity,
    logical_width,
    padded_width,
    structural_mask,
)


class TestGeometry:
    def test_choose_L(self):
        assert choose_L(1) == 4
        assert choose_L(3) == 8
        assert choose_L(7) == 16

    def test_choose_L_validates(self):
        with pytest.raises(ValueError):
            choose_L(0)

    def test_logical_width(self):
        # 2r + L = 4r + 2 with the default L
        assert logical_width(3) == 14
        assert logical_width(7) == 30

    def test_padded_width_paper_case(self):
        # the paper pads 8×14 to 8×16 for r=3
        assert padded_width(3) == 16

    def test_padded_width_at_least_2L(self):
        for r in range(1, 20):
            assert padded_width(r) >= 2 * choose_L(r)

    def test_padded_width_multiple_of_align(self):
        for r in range(1, 20):
            assert padded_width(r) % 16 == 0


class TestSparsity:
    def test_exactly_half_with_default_L(self):
        # §3.1.1: L = 2r+2 pins sparsity at exactly 50%
        for r in range(1, 12):
            assert kernel_matrix_sparsity(r) == pytest.approx(0.5)

    def test_formula(self):
        # sparsity = 1 - (2r+1)/(2r+L)
        assert kernel_matrix_sparsity(2, L=10) == pytest.approx(1 - 5 / 14)


class TestBuild:
    def test_diagonal_band(self, rng):
        row = rng.standard_normal(7)  # r = 3
        k = build_kernel_matrix(row)
        assert k.shape == (8, 16)
        for i in range(8):
            assert np.array_equal(k[i, i : i + 7], row)
            assert np.count_nonzero(k[i]) <= 7

    def test_gemm_equals_stencil(self, rng):
        # Y = K·X reproduces the 1D stencil update (Figure 4)
        r = 2
        row = rng.standard_normal(2 * r + 1)
        k = build_kernel_matrix(row)
        L, W = k.shape
        x_line = rng.standard_normal(W)
        y = k @ x_line
        for i in range(L):
            expected = sum(row[t] * x_line[i + t] for t in range(2 * r + 1))
            assert y[i] == pytest.approx(expected)

    def test_even_length_rejected(self):
        with pytest.raises(ValueError):
            build_kernel_matrix(np.ones(4))

    def test_too_small_L_rejected(self, rng):
        with pytest.raises(ValueError, match="sparsity requirement"):
            build_kernel_matrix(rng.standard_normal(5), L=4)

    @given(r=st.integers(1, 10), seed=st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_band_structure_property(self, r, seed):
        rng = np.random.default_rng(seed)
        row = rng.standard_normal(2 * r + 1)
        k = build_kernel_matrix(row)
        mask = structural_mask(r)
        assert k.shape == mask.shape
        # non-zeros only inside the structural band
        assert (k[~mask] == 0).all()


class TestStructuralMask:
    def test_band_widths(self):
        m = structural_mask(3)
        assert m.sum(axis=1).tolist() == [7] * 8

    def test_mask_value_independent(self, rng):
        # same mask regardless of coefficients, incl. zeros (star rows)
        m1 = structural_mask(2)
        row = np.zeros(5)
        row[2] = 1.0
        k = build_kernel_matrix(row)
        assert (k[~m1] == 0).all()
