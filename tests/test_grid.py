"""Tests for repro.stencil.grid."""

import numpy as np
import pytest

from repro.stencil.grid import BoundaryCondition, Grid


class TestConstruction:
    def test_basic(self, rng):
        g = Grid(rng.standard_normal((4, 5)))
        assert g.dims == 2
        assert g.shape == (4, 5)
        assert g.num_points == 20

    def test_dtype_coerced(self):
        g = Grid(np.ones((3, 3), dtype=np.float32))
        assert g.data.dtype == np.float64

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Grid(np.zeros((0, 4)))

    def test_4d_rejected(self):
        with pytest.raises(ValueError):
            Grid(np.zeros((2, 2, 2, 2)))

    def test_factories(self, rng):
        assert Grid.zeros((3, 3)).data.sum() == 0
        assert Grid.random((8,), rng).shape == (8,)
        g = Grid.from_function((4, 4), lambda x, y: x + y)
        assert g.data[0, 0] == 0.0


class TestPadding:
    def test_zero_padding(self):
        g = Grid(np.ones((3, 3)), BoundaryCondition.ZERO)
        p = g.padded(2)
        assert p.shape == (7, 7)
        assert p[0, 0] == 0.0
        assert p[3, 3] == 1.0

    def test_periodic_padding(self):
        g = Grid(np.arange(4, dtype=float), BoundaryCondition.PERIODIC)
        p = g.padded(1)
        assert p[0] == 3.0 and p[-1] == 0.0

    def test_reflect_padding(self):
        g = Grid(np.arange(4, dtype=float), BoundaryCondition.REFLECT)
        p = g.padded(1)
        assert p[0] == 1.0 and p[-1] == 2.0

    def test_nearest_padding(self):
        g = Grid(np.arange(4, dtype=float), BoundaryCondition.NEAREST)
        p = g.padded(2)
        assert p[0] == 0.0 and p[-1] == 3.0

    def test_zero_radius_copies(self):
        g = Grid(np.ones((3,)))
        p = g.padded(0)
        p[0] = 5.0
        assert g.data[0] == 1.0

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Grid(np.ones((3,))).padded(-1)

    def test_reflect_too_small_rejected(self):
        g = Grid(np.ones((2,)), BoundaryCondition.REFLECT)
        with pytest.raises(ValueError):
            g.padded(2)


class TestHelpers:
    def test_like_preserves_bc(self):
        g = Grid(np.ones((3,)), BoundaryCondition.PERIODIC)
        h = g.like(np.zeros((3,)))
        assert h.bc is BoundaryCondition.PERIODIC

    def test_copy_independent(self):
        g = Grid(np.ones((3,)))
        h = g.copy()
        h.data[0] = 9.0
        assert g.data[0] == 1.0
