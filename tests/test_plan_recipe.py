"""Recipe round-tripping and compile-plan pickling.

The process-backend serving contract rests on one property: a compile
plan is a *pure function of its recipe* ``(spec, precision, variant,
device, tile shape)``.  These tests pin it down at three layers —

* dict round-trips (`StencilSpec`, `PlanKey`, `DeviceSpec`, `PlanRecipe`)
  are exact, including the coefficient bytes and the routing hash;
* ``pickle.loads(pickle.dumps(plan))`` recompiles an executor whose fused
  output is **bit-identical** to the original executor's per-row
  reference oracle (the seed path `_reference_run`), as a hypothesis
  property over random kernels, precisions and grids;
* plans pickle as recipes: the payload stays small (no workspace arenas,
  no expanded operands) and the rebuilt plan re-establishes workspaces
  lazily on first use.
"""

import json
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PlanRecipe, SpiderVariant, build_compile_plan
from repro.gpu.device import A100_80GB_PCIE, GENERIC_GPU, DeviceSpec
from repro.serve import PlanKey, plan_key_for
from repro.stencil import Grid, ShapeType, StencilSpec, named_stencil
from repro.stencil.spec import star_mask


def spec_strategy(max_dims: int = 2, max_radius: int = 2):
    """Random star/box StencilSpec values via hypothesis."""

    @st.composite
    def build(draw):
        dims = draw(st.integers(1, max_dims))
        r = draw(st.integers(1, max_radius))
        shape = draw(st.sampled_from([ShapeType.BOX, ShapeType.STAR]))
        side = 2 * r + 1
        n = side**dims
        vals = draw(
            st.lists(
                st.floats(-4, 4, allow_nan=False, width=32),
                min_size=n,
                max_size=n,
            )
        )
        w = np.array(vals, dtype=np.float64).reshape((side,) * dims)
        if shape is ShapeType.STAR and dims > 1:
            w = np.where(star_mask(dims, r), w, 0.0)
        return StencilSpec(shape, dims, r, w)

    return build()


# ----------------------------------------------------------------------
# dict round-trips
# ----------------------------------------------------------------------


def test_spec_dict_roundtrip_named():
    for name in ("heat1d", "heat2d", "blur2d", "wave2d", "heat3d", "blur3d"):
        spec = named_stencil(name)
        again = StencilSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.name == spec.name
        assert again.weights.tobytes() == spec.weights.tobytes()


def test_spec_dict_is_json_compatible():
    spec = named_stencil("wave2d")
    wire = json.dumps(spec.to_dict())
    assert StencilSpec.from_dict(json.loads(wire)) == spec


def test_spec_equality_ignores_name_tag():
    a = named_stencil("heat2d")
    b = a.with_weights(a.weights)
    object.__setattr__(b, "name", "renamed")
    assert a == b and hash(a) == hash(b)
    c = named_stencil("jacobi2d")
    assert a != c
    assert a != "heat2d"


def test_plan_key_dict_roundtrip_preserves_routing():
    key = plan_key_for(named_stencil("blur2d"), grid_shape=(48, 64))
    again = PlanKey.from_dict(key.to_dict())
    assert again == key
    assert again.routing_hash() == key.routing_hash()
    assert json.loads(json.dumps(key.to_dict())) == key.to_dict()


def test_device_dict_roundtrip():
    for dev in (A100_80GB_PCIE, GENERIC_GPU):
        again = DeviceSpec.from_dict(dev.to_dict())
        assert again == dev
        assert json.loads(json.dumps(dev.to_dict())) == dev.to_dict()


def test_plan_recipe_roundtrip_and_build():
    spec = named_stencil("heat2d")
    plan = build_compile_plan(spec, precision="fp16", grid_shape=(32, 40))
    recipe = plan.recipe()
    assert recipe.grid_shape == (32, 40)
    again = PlanRecipe.from_dict(recipe.to_dict())
    assert again == recipe
    rebuilt = again.build()
    assert rebuilt.spec == plan.spec
    assert rebuilt.precision == plan.precision
    assert rebuilt.variant is plan.variant
    assert rebuilt.tile_plan == plan.tile_plan
    assert np.array_equal(
        rebuilt.executor.fused_operator.kernel_compact,
        plan.executor.fused_operator.kernel_compact,
    )


@given(
    spec=spec_strategy(),
    steps=st.integers(1, 4),
    shape=st.sampled_from([(), (32,), (24, 28)]),
)
@settings(max_examples=25, deadline=None)
def test_sweep_aware_key_and_recipe_roundtrip(spec, steps, shape):
    """The sweep-aware PlanKey and PlanRecipe survive the JSON wire format
    exactly: equality, steps, and the routing hash (which deliberately
    ignores steps so super-sweeps share their plain plan's shard)."""
    key = plan_key_for(spec, grid_shape=shape, steps=steps)
    again = PlanKey.from_dict(json.loads(json.dumps(key.to_dict())))
    assert again == key
    assert again.steps == steps
    assert again.routing_hash() == key.routing_hash()
    assert key.routing_hash() == key.base().routing_hash()
    recipe = PlanRecipe(
        spec=spec,
        precision="exact",
        variant=SpiderVariant.SPTC_CO,
        device=GENERIC_GPU,
        grid_shape=shape or None,
        steps=steps,
    )
    again_r = PlanRecipe.from_dict(json.loads(json.dumps(recipe.to_dict())))
    assert again_r == recipe
    assert again_r.steps == steps


# ----------------------------------------------------------------------
# pickle = recipe + recompile
# ----------------------------------------------------------------------


def test_plan_pickles_small_without_workspaces(rng):
    plan = build_compile_plan(named_stencil("blur2d"))
    # serve a few geometries so the arena is populated and accounted
    for shape in ((16, 16), (24, 20)):
        plan.executor.run(Grid.random(shape, rng))
    assert plan.workspace_nbytes() > 0
    blob = pickle.dumps(plan)
    # recipes are pure data: far smaller than one workspace arena
    assert len(blob) < 4096
    restored = pickle.loads(blob)
    # workspaces were not carried; they rebuild lazily on first use
    assert len(restored.executor._workspaces) == 0
    g = Grid.random((16, 16), rng)
    assert restored.executor.run(g).tobytes() == plan.executor.run(g).tobytes()
    assert len(restored.executor._workspaces) == 1


def test_plan_pickle_covers_variants_and_tile_plans(rng):
    g = Grid.random((20, 24), rng)
    for variant in SpiderVariant:
        plan = build_compile_plan(
            named_stencil("wave2d"), variant=variant, grid_shape=(20, 24)
        )
        restored = pickle.loads(pickle.dumps(plan))
        assert restored.variant is variant
        assert restored.tile_plan == plan.tile_plan
        assert restored.executor.run(g).tobytes() == plan.executor.run(g).tobytes()


@given(
    spec=spec_strategy(),
    precision=st.sampled_from(["exact", "fp16"]),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=20, deadline=None)
def test_pickled_plan_matches_reference_oracle(spec, precision, seed):
    """`pickle.loads(pickle.dumps(plan))` recompiles to an executor whose
    fused output is bit-identical to the original's reference oracle."""
    assert StencilSpec.from_dict(spec.to_dict()) == spec
    plan = build_compile_plan(spec, precision=precision)
    restored = pickle.loads(pickle.dumps(plan))
    rng = np.random.default_rng(seed)
    shape = (11,) if spec.dims == 1 else (9, 11)
    grid = Grid.random(shape, rng)
    oracle = plan.executor._reference_run([grid])[0]
    out = restored.executor.run(grid)
    assert out.dtype == oracle.dtype
    assert out.tobytes() == oracle.tobytes()


def test_executor_pickle_is_deterministic(rng):
    plan = build_compile_plan(named_stencil("heat3d"))
    ex = pickle.loads(pickle.dumps(plan.executor))
    op0, op1 = plan.executor.fused_operator, ex.fused_operator
    assert np.array_equal(op0.kernel_compact, op1.kernel_compact)
    assert np.array_equal(op0.active_cols, op1.active_cols)
    assert op0.active_kernel_rows == op1.active_kernel_rows
    g = Grid.random((7, 8, 9), rng)
    assert ex.run(g).tobytes() == plan.executor.run(g).tobytes()


def test_fused_operator_pickle_roundtrip(rng):
    for variant in (SpiderVariant.SPTC_CO, SpiderVariant.TC):
        for precision in ("exact", "fp16"):
            plan = build_compile_plan(
                named_stencil("blur2d"), precision=precision, variant=variant
            )
            op = plan.executor.fused_operator
            op2 = pickle.loads(pickle.dumps(op))
            assert op2.use_sptc == op.use_sptc
            assert np.array_equal(op2.kernel_compact, op.kernel_compact)
            x = rng.standard_normal((op.n_x_rows, 8)).astype(
                np.float32 if precision == "fp16" else np.float64
            )
            y0 = np.empty((op.m_active, 8), dtype=op.acc_dtype)
            y1 = np.empty((op.m_active, 8), dtype=op.acc_dtype)
            assert (
                op.execute(x, out=y0).tobytes()
                == op2.execute(x, out=y1).tobytes()
            )
