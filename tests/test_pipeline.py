"""Tests for the public Spider API."""

import numpy as np
import pytest

from repro import Grid, Spider, SpiderVariant, named_stencil
from repro.core.row_swap import RowSwapStrategy
from repro.stencil import make_box_kernel, naive_stencil


class TestPublicAPI:
    def test_quickstart_flow(self, rng):
        spider = Spider(named_stencil("heat2d"))
        g = Grid.random((64, 64), rng)
        out = spider.run(g)
        assert out.shape == (64, 64)
        assert np.allclose(out, naive_stencil(named_stencil("heat2d"), g))

    def test_top_level_exports(self):
        import repro

        assert hasattr(repro, "Spider")
        assert hasattr(repro, "StencilSpec")
        assert repro.__version__

    def test_encoded_rows_exposed(self, rng):
        sp = Spider(make_box_kernel(2, 2, rng))
        assert len(sp.encoded_rows) == 5  # 2r+1 kernel rows


class TestCompileReport:
    def test_report_fields(self, rng):
        sp = Spider(make_box_kernel(2, 3, rng))
        rep = sp.compile_report()
        assert rep.L == 8
        assert rep.width == 16
        assert rep.sparsity == pytest.approx(0.5)
        assert rep.num_kernel_rows == 7
        assert rep.row_swap_strategy is RowSwapStrategy.FOLDED_OFFSET
        # half the dense parameters stored
        assert rep.parameter_elements == 7 * 8 * 8

    def test_packing_wins_reported(self, rng):
        rep = Spider(make_box_kernel(2, 7, rng)).compile_report()
        assert rep.packed_kernel_transactions < rep.unpacked_kernel_transactions
        assert rep.metadata_registers_packed <= rep.metadata_registers_naive

    def test_report_cached(self, rng):
        sp = Spider(make_box_kernel(2, 1, rng))
        assert sp.compile_report() is sp.compile_report()

    def test_store_permute_strategy_small_radius(self, rng):
        rep = Spider(make_box_kernel(2, 1, rng)).compile_report()
        assert rep.row_swap_strategy is RowSwapStrategy.STORE_PERMUTE


class TestEstimation:
    def test_estimated_gstencils_positive(self, rng):
        sp = Spider(make_box_kernel(2, 2, rng))
        g = sp.estimated_gstencils((10240, 10240))
        assert 10 < g < 1000  # paper ballpark for Box-2D2R

    def test_larger_radius_slower(self, rng):
        g1 = Spider(make_box_kernel(2, 1, rng)).estimated_gstencils((10240, 10240))
        g3 = Spider(make_box_kernel(2, 3, rng)).estimated_gstencils((10240, 10240))
        assert g3 < g1

    def test_timing_breakdown(self, rng):
        sp = Spider(make_box_kernel(2, 2, rng))
        t = sp.estimated_time((4096, 4096))
        assert t.total_s > 0
        assert t.bound in ("compute", "memory")

    def test_tile_plan(self, rng):
        plan = Spider(make_box_kernel(2, 2, rng)).tile_plan((1024, 1024))
        assert plan.num_blocks > 0


class TestVariantsAPI:
    def test_all_variants_equivalent_functionally(self, rng):
        spec = make_box_kernel(2, 1, rng)
        g = Grid.random((20, 24), rng)
        ref = naive_stencil(spec, g)
        for variant in SpiderVariant:
            assert np.allclose(Spider(spec, variant=variant).run(g), ref), variant
