"""Tests for temporal kernel fusion."""

import numpy as np
import pytest

from repro.core.pipeline import Spider
from repro.core.temporal import TemporalSpider, fuse_kernel
from repro.serve import spec_fingerprint
from repro.stencil import (
    BoundaryCondition,
    Grid,
    make_box_kernel,
    make_star_kernel,
    named_stencil,
    run_iterations,
    vectorized_stencil,
)


class TestFuseKernel:
    def test_radius_grows_linearly(self, rng):
        spec = make_box_kernel(2, 1, rng)
        fused = fuse_kernel(spec, 3)
        assert fused.radius == 3
        assert fused.weights.shape == (7, 7)

    def test_identity_for_one_step(self, rng):
        spec = make_box_kernel(2, 2, rng)
        fused = fuse_kernel(spec, 1)
        assert np.allclose(fused.weights, spec.weights)

    def test_one_step_returns_spec_unchanged(self, rng):
        """Regression: steps=1 used to relabel star stencils as BOX with
        unchanged weights — a different spec_fingerprint, hence a
        gratuitous plan-cache miss and recompile for a mathematically
        identical kernel."""
        star = make_star_kernel(2, 2, rng)
        fused = fuse_kernel(star, 1)
        assert fused is star
        assert fused.shape is star.shape
        assert spec_fingerprint(fused) == spec_fingerprint(star)

    def test_star_densifies_to_box(self, rng):
        spec = make_star_kernel(2, 1, rng)
        fused = fuse_kernel(spec, 2)
        # the composed star has corner entries
        assert fused.weights[0, 0] != 0 or fused.num_nonzero > spec.num_nonzero

    @pytest.mark.parametrize("steps", [2, 3])
    def test_fused_equals_repeated_sweeps_interior(self, rng, steps):
        """The fused kernel reproduces t plain sweeps at interior points
        (>= t·r from the boundary); the boundary ring differs because
        Dirichlet stepping re-clamps the halo each step — which is exactly
        what TemporalSpider's strip correction repairs."""
        spec = make_box_kernel(2, 1, rng)
        fused = fuse_kernel(spec, steps)
        g = Grid.random((20, 24), rng)
        stepped, _ = run_iterations(spec, g, steps)
        once = vectorized_stencil(fused, g)
        ring = steps * spec.radius
        inner = (slice(ring, -ring), slice(ring, -ring))
        assert np.allclose(once[inner], stepped.data[inner], atol=1e-10)
        # and the boundary genuinely differs (the correction is not vacuous)
        assert not np.allclose(once, stepped.data, atol=1e-10)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            fuse_kernel(make_box_kernel(1, 1, rng), 0)


class TestTemporalSpider:
    def test_matches_plain_stepping(self, rng):
        spec = named_stencil("heat2d")
        g = Grid.random((28, 36), rng)
        ts = TemporalSpider(spec, steps=2)
        fused = ts.run(g, total_steps=6)
        plain, _ = run_iterations(spec, g, 6)
        assert np.allclose(fused.data, plain.data, atol=1e-9)

    def test_remainder_steps(self, rng):
        spec = named_stencil("heat2d")
        g = Grid.random((20, 20), rng)
        ts = TemporalSpider(spec, steps=3)
        out = ts.run(g, total_steps=5)  # one fused super-step + 2 plain
        plain, _ = run_iterations(spec, g, 5)
        assert np.allclose(out.data, plain.data, atol=1e-9)

    def test_fused_radius(self, rng):
        ts = TemporalSpider(make_box_kernel(2, 2, rng), steps=3)
        assert ts.fused_radius == 6

    def test_zero_steps_identity(self, rng):
        spec = named_stencil("heat2d")
        g = Grid.random((8, 8), rng)
        out = TemporalSpider(spec, steps=2).run(g, 0)
        assert np.array_equal(out.data, g.data)

    def test_zero_steps_returns_fresh_buffer(self, rng):
        """Regression: the zero-step path returned a Grid aliasing the
        input's buffer, so mutating the result corrupted the caller's
        input."""
        spec = named_stencil("heat2d")
        g = Grid.random((8, 8), rng)
        original = g.data.copy()
        out = TemporalSpider(spec, steps=2).run(g, 0)
        assert out.data is not g.data
        out.data[:] = -1.0
        assert np.array_equal(g.data, original)

    def test_matches_plain_stepping_3d(self, rng):
        spec = named_stencil("heat3d")
        g = Grid.random((12, 13, 14), rng)
        ts = TemporalSpider(spec, steps=2)
        fused = ts.run(g, total_steps=4)
        plain, _ = run_iterations(spec, g, 4)
        assert np.allclose(fused.data, plain.data, atol=1e-9)

    @pytest.mark.parametrize(
        "name,shape,steps",
        [
            ("wave1d", (97,), 2),
            ("heat2d", (26, 30), 3),
            ("heat3d", (13, 14, 15), 2),
        ],
    )
    def test_boundary_ring_bit_identical_to_plain(self, rng, name, shape, steps):
        """The strip recomputation makes the outer t*r ring *byte*-equal
        to plain SPIDER stepping (the interior rounds once where plain
        stepping rounds t times, so it may differ in the last ulp)."""
        spec = named_stencil(name)
        g = Grid.random(shape, rng)
        out = TemporalSpider(spec, steps=steps).run(g, steps).data
        sp = Spider(spec)
        seq = g.data
        for _ in range(steps):
            seq = sp.run(Grid(seq, BoundaryCondition.ZERO))
        ring = steps * spec.radius
        interior = tuple(slice(ring, -ring) for _ in shape)
        mask = np.zeros(shape, dtype=bool)
        mask[interior] = True
        assert not ((out != seq) & ~mask).any()
        np.testing.assert_allclose(out, seq, rtol=0, atol=1e-12)

    def test_small_domain_falls_back_to_plain_stepping(self, rng):
        spec = named_stencil("heat2d")
        g = Grid.random((6, 6), rng)  # min side <= 2 * ring for steps=3
        ts = TemporalSpider(spec, steps=3)
        out = ts.run(g, 3).data
        sp = Spider(spec)
        seq = g.data
        for _ in range(3):
            seq = sp.run(Grid(seq, BoundaryCondition.ZERO))
        assert out.tobytes() == seq.tobytes()

    def test_rejects_nonzero_bc(self, rng):
        spec = named_stencil("heat2d")
        g = Grid.random((8, 8), rng, BoundaryCondition.PERIODIC)
        with pytest.raises(ValueError, match="ZERO"):
            TemporalSpider(spec).run(g, 2)

    def test_traffic_savings_positive(self, rng):
        ts = TemporalSpider(make_box_kernel(2, 1, rng), steps=4)
        assert ts.traffic_savings() > 1.0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            TemporalSpider(named_stencil("heat2d"), steps=0)
        with pytest.raises(ValueError):
            TemporalSpider(named_stencil("heat2d")).run(
                Grid.random((8, 8), rng), -1
            )
