"""Differential suite for solver sessions (`StencilService.submit_solve`).

A solver session decomposes a multigrid V-cycle or smoother chain into
per-iteration operator submits riding the coalescing/sharding/shm path.
That is only shippable if the decomposition is *enforced* to be exact:
the served solve must return byte-identical solutions, iteration counts
and residuals to the sequential sync reference chain
(:func:`repro.stencil.multigrid.solve` over a :class:`PlanExecutor`),
across dims x precision x thread/process/sync backends.  This module
also pins convergence-aware early exit, concurrent-session interleaving
(cross-session batch sharing), residual-history bounding, and the
eager-validation contract.
"""

import numpy as np
import pytest

from repro.serve import StencilService
from repro.stencil import (
    BoundaryCondition,
    Grid,
    coarsen_shape,
    multigrid,
    multigrid_operators,
    poisson_operator_spec,
    solve_stream,
    solver_workloads,
)
from repro.stencil.solvers import PlanExecutor

BACKENDS = ["sync", "thread", "process"]

#: (dims, grid shape) — odd 2**k - 1 sides so V-cycles coarsen fully.
DIM_SHAPES = [(1, (63,)), (2, (31, 31)), (3, (15, 15, 15))]


def _service_kwargs(backend):
    if backend == "sync":
        return dict(workers=0)
    return dict(
        workers=2, backend=backend, max_batch_size=4, max_wait_s=0.001
    )


def _reference_solve(spec, rhs, *, precision="exact", **opts):
    """Sequential sync reference: every operator apply is a direct
    fused-plan execution through a private PlanExecutor."""
    with PlanExecutor(precision=precision, mac_threads=1) as ex:
        return multigrid.solve(spec, rhs, executor=ex, **opts)


def _served_solves(requests, *, backend, precision="exact", **opts):
    with StencilService(
        precision=precision, **_service_kwargs(backend)
    ) as svc:
        handles = [
            svc.submit_solve(spec, rhs, **opts) for spec, rhs in requests
        ]
        svc.drain()
        results = [h.result(timeout=120) for h in handles]
        stats = svc.stats()
    assert stats.telemetry.solve_failures == 0
    assert stats.telemetry.errors == 0
    return results, stats


def _assert_same_solve(ref, got):
    assert ref.iterations == got.iterations
    assert ref.converged == got.converged
    assert ref.residual == got.residual
    assert ref.solution.dtype == got.solution.dtype
    assert ref.solution.tobytes() == got.solution.tobytes()


# ----------------------------------------------------------------------
# differential: served session vs sequential sync reference chain
# ----------------------------------------------------------------------


@pytest.mark.parametrize("dims,shape", DIM_SHAPES)
@pytest.mark.parametrize("backend", BACKENDS)
def test_v_cycle_session_matches_reference(backend, dims, shape, rng):
    """A served V-cycle solve is byte-identical to the sync reference
    chain, for every dimensionality and backend."""
    spec = poisson_operator_spec(dims)
    rhs = Grid.random(shape, rng)
    opts = dict(tol=1e-8, max_iters=30)
    ref = _reference_solve(spec, rhs, **opts)
    assert ref.converged
    (got,), _ = _served_solves([(spec, rhs)], backend=backend, **opts)
    _assert_same_solve(ref, got)


@pytest.mark.parametrize("cycle", ["jacobi", "rb"])
@pytest.mark.parametrize("backend", BACKENDS)
def test_smoother_chain_session_matches_reference(backend, cycle, rng):
    """Smoother chains (weighted-Jacobi / red-black) are byte-identical
    too — including their parent-side mask merges and axpy glue."""
    spec = poisson_operator_spec(2)
    rhs = Grid.random((31, 31), rng)
    opts = dict(tol=1e-10, max_iters=25, cycle=cycle)
    ref = _reference_solve(spec, rhs, **opts)
    assert not ref.converged  # smoother chains converge slowly by design
    assert ref.iterations == 25
    (got,), _ = _served_solves([(spec, rhs)], backend=backend, **opts)
    _assert_same_solve(ref, got)


@pytest.mark.parametrize("backend", ["sync", "thread"])
def test_fp16_precision_session_matches_reference(backend, rng):
    """fp16 serving precision changes the numbers but not the identity:
    both paths run the same fp16 fused plans and the same parent glue."""
    spec = poisson_operator_spec(2)
    rhs = Grid.random((31, 31), rng)
    opts = dict(tol=1e-3, max_iters=20)
    ref = _reference_solve(spec, rhs, precision="fp16", **opts)
    (got,), _ = _served_solves(
        [(spec, rhs)], backend=backend, precision="fp16", **opts
    )
    _assert_same_solve(ref, got)


def test_concurrent_sessions_interleave_in_shared_batches(rng):
    """Concurrent solves interleave: sessions submitted together must
    still each match their solo reference bit-for-bit, while their
    per-iteration submits coalesce into shared batches (occupancy > 1)."""
    wls = solver_workloads((1, 2))
    requests = [
        (wl.spec, wl.make_grid(rng)) for wl in wls for _ in range(3)
    ]
    opts = dict(tol=1e-8, max_iters=30)
    refs = [_reference_solve(s, g, **opts) for s, g in requests]
    got, stats = _served_solves(requests, backend="thread", **opts)
    for ref, out in zip(refs, got):
        _assert_same_solve(ref, out)
    assert stats.telemetry.solves == len(requests)
    assert stats.telemetry.solves_converged == len(requests)
    # cross-session batch sharing actually happened
    assert stats.telemetry.occupancy["max"] > 1


def test_early_exit_stops_before_iteration_cap(rng):
    """Convergence-aware early exit: a V-cycle on a well-conditioned
    Poisson problem converges well under the cap, and the served session
    stops at exactly the same iteration as the reference."""
    spec = poisson_operator_spec(2)
    rhs = Grid.random((31, 31), rng)
    opts = dict(tol=1e-6, max_iters=100)
    ref = _reference_solve(spec, rhs, **opts)
    assert ref.converged
    assert ref.iterations < 100
    (got,), stats = _served_solves([(spec, rhs)], backend="thread", **opts)
    _assert_same_solve(ref, got)
    assert stats.telemetry.solve_iterations_total == ref.iterations


def test_solve_stream_traffic_matches_reference(rng):
    """The serve-bench solver traffic path end to end: a solve_stream
    trace served concurrently equals the per-request references."""
    wls = solver_workloads((2,))
    trace = list(solve_stream(wls, 4, tol=1e-7, max_iters=30, seed=3))
    refs = [
        _reference_solve(r.spec, r.rhs, tol=r.tol, max_iters=r.max_iters)
        for r in trace
    ]
    with StencilService(**_service_kwargs("thread")) as svc:
        handles = [
            svc.submit_solve(r.spec, r.rhs, tol=r.tol, max_iters=r.max_iters)
            for r in trace
        ]
        svc.drain()
        got = [h.result(timeout=120) for h in handles]
    for ref, out in zip(refs, got):
        _assert_same_solve(ref, out)


# ----------------------------------------------------------------------
# session lifecycle, progress and history
# ----------------------------------------------------------------------


def test_handle_reports_live_progress_and_metadata(rng):
    spec = poisson_operator_spec(2)
    rhs = Grid.random((31, 31), rng)
    with StencilService(**_service_kwargs("thread")) as svc:
        h = svc.submit_solve(spec, rhs, tol=1e-8, max_iters=30)
        res = h.result(timeout=120)
    assert h.done()
    assert h.cycle == "v"
    assert h.shape == (31, 31)
    assert h.iterations == res.iterations
    assert h.residual == res.residual
    assert h.exception(timeout=1) is None


def test_residual_history_opt_in_and_ring_bounded(rng):
    spec = poisson_operator_spec(2)
    rhs = Grid.random((31, 31), rng)
    with StencilService(workers=0) as svc:
        off = svc.submit_solve(spec, rhs, tol=1e-8, max_iters=20)
        on = svc.submit_solve(
            spec, rhs, tol=1e-8, max_iters=20, record_history=True
        )
        ring = svc.submit_solve(
            spec,
            rhs,
            tol=1e-12,
            max_iters=20,
            record_history=True,
            history_limit=4,
        )
        svc.drain()
    assert off.result().residual_history == []
    history = on.result().residual_history
    assert len(history) == on.result().iterations
    assert history[-1] == on.result().residual
    bounded = ring.result()
    assert len(bounded.residual_history) == 4  # ring keeps the tail
    assert bounded.residual_history[-1] == bounded.residual
    assert bounded.iterations == 20  # exact even when history is bounded


def test_drain_waits_for_sessions_and_close_rejects_new_ones(rng):
    spec = poisson_operator_spec(1)
    rhs = Grid.random((63,), rng)
    svc = StencilService(**_service_kwargs("thread"))
    try:
        h = svc.submit_solve(spec, rhs, tol=1e-8, max_iters=30)
        svc.drain()
        assert h.done()
    finally:
        svc.close()
    with pytest.raises(RuntimeError):
        svc.submit_solve(spec, rhs, tol=1e-8, max_iters=30)


def test_solve_failure_routed_to_handle_and_counted(rng):
    """A mid-solve executor failure fails that handle (not the service)
    and increments the solve_failures counter."""
    spec = poisson_operator_spec(2)
    rhs = Grid.random((31, 31), rng)
    with StencilService(**_service_kwargs("thread")) as svc:
        bad = svc.submit_solve(
            spec, Grid.random((12, 12, 12), rng), tol=1e-8, max_iters=5
        )
        with pytest.raises(Exception):
            bad.result(timeout=120)
        assert bad.exception(timeout=1) is not None
        good = svc.submit_solve(spec, rhs, tol=1e-8, max_iters=30)
        assert good.result(timeout=120).converged
        stats = svc.stats()
    assert stats.telemetry.solve_failures == 1
    assert stats.telemetry.solves == 1


# ----------------------------------------------------------------------
# validation: eager, synchronous ValueErrors
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(tol=0.0),
        dict(tol=-1e-8),
        dict(tol=float("nan")),
        dict(max_iters=0),
        dict(cycle="w"),
        dict(smoother="sor"),
        dict(omega=0.0),
        dict(history_limit=0),
    ],
)
def test_submit_solve_rejects_bad_arguments_eagerly(kwargs, rng):
    spec = poisson_operator_spec(2)
    rhs = Grid.random((31, 31), rng)
    with StencilService(workers=0) as svc:
        with pytest.raises(ValueError):
            svc.submit_solve(
                spec, rhs, **{"tol": 1e-8, "max_iters": 10, **kwargs}
            )
        assert svc.stats().telemetry.solve_failures == 0


def test_submit_solve_rejects_mismatched_x0_and_bad_rhs(rng):
    spec = poisson_operator_spec(2)
    with StencilService(workers=0) as svc:
        with pytest.raises(ValueError):
            svc.submit_solve(
                spec,
                Grid.random((31, 31), rng),
                x0=np.zeros((15, 15)),
                tol=1e-8,
                max_iters=10,
            )
        with pytest.raises(ValueError):  # ndim 4 unsupported
            svc.submit_solve(
                spec, np.zeros((3, 3, 3, 3)), tol=1e-8, max_iters=10
            )
        with pytest.raises(ValueError):  # non-zero Dirichlet boundary
            svc.submit_solve(
                spec,
                Grid.random((31, 31), rng, bc=BoundaryCondition.PERIODIC),
                tol=1e-8,
                max_iters=10,
            )


def test_validation_mirrors_direct_solver_api(rng):
    """submit_solve and multigrid.solve reject identically."""
    spec = poisson_operator_spec(2)
    rhs = np.zeros((31, 31))
    for kwargs in [dict(tol=0.0), dict(max_iters=0), dict(cycle="w")]:
        merged = {"tol": 1e-8, "max_iters": 10, **kwargs}
        with pytest.raises(ValueError):
            multigrid.solve(spec, rhs, **merged)
        with StencilService(workers=0) as svc:
            with pytest.raises(ValueError):
                svc.submit_solve(spec, rhs, **merged)


# ----------------------------------------------------------------------
# multigrid operator-set sanity (the specs the sessions are built from)
# ----------------------------------------------------------------------


def test_multigrid_hierarchy_coarsens_to_floor():
    assert coarsen_shape((63,)) == (31,)
    assert coarsen_shape((31, 31)) == (15, 15)
    assert coarsen_shape((7, 7)) == (3, 3)
    assert coarsen_shape((3, 3)) is None  # below MIN_COARSE_SIZE
    assert coarsen_shape((32, 32)) is None  # even side: not vertex-centred


def test_multigrid_operator_set_is_cacheable():
    """One operator set per (spec, omega) — five named specs the plan
    cache can key on, fingerprint-stable across calls."""
    spec = poisson_operator_spec(2)
    ops_a = multigrid_operators(spec)
    ops_b = multigrid_operators(spec)
    names = {s.name for s in ops_a.all_specs()}
    assert len(names) == 5
    for sa, sb in zip(ops_a.all_specs(), ops_b.all_specs()):
        assert sa.name == sb.name
        assert np.array_equal(sa.weights, sb.weights)


def test_telemetry_residuals_recorded_per_iteration(rng):
    spec = poisson_operator_spec(2)
    rhs = Grid.random((31, 31), rng)
    with StencilService(**_service_kwargs("thread")) as svc:
        h = svc.submit_solve(spec, rhs, tol=1e-8, max_iters=30)
        res = h.result(timeout=120)
        t = svc.stats().telemetry
    assert t.solve_iterations_total == res.iterations
    assert t.solve_residual["count"] == float(res.iterations)
    assert t.solve_iterations["mean"] == float(res.iterations)


def test_traced_sessions_emit_solver_iteration_spans(rng):
    spec = poisson_operator_spec(2)
    rhs = Grid.random((31, 31), rng)
    with StencilService(trace=True, **_service_kwargs("thread")) as svc:
        res = svc.submit_solve(spec, rhs, tol=1e-8, max_iters=30).result(
            timeout=120
        )
        spans = svc.trace_spans()
    iter_spans = [s for s in spans if s.name == "solver_iteration"]
    assert len(iter_spans) == res.iterations
    assert any(s.name == "solve" for s in spans)
