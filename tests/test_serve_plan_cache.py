"""Plan-cache semantics: fingerprints, hit/miss keys, LRU order, and
bit-identity of cached plans vs. fresh compiles."""

import numpy as np
import pytest

from repro.core import Spider, SpiderVariant, build_compile_plan
from repro.serve import CacheStats, PlanCache, plan_key_for, spec_fingerprint
from repro.stencil import Grid, make_box_kernel, named_stencil


def test_fingerprint_equal_for_equal_specs():
    a = named_stencil("heat2d")
    b = named_stencil("heat2d")
    assert a is not b
    assert spec_fingerprint(a) == spec_fingerprint(b)


def test_fingerprint_ignores_cosmetic_name():
    a = named_stencil("heat2d")
    b = a.with_weights(np.asarray(a.weights))
    assert b.name == a.name
    object.__setattr__(b, "name", "renamed")
    assert spec_fingerprint(a) == spec_fingerprint(b)


def test_fingerprint_differs_on_weights_radius_shape():
    rng = np.random.default_rng(0)
    base = make_box_kernel(2, 2, rng)
    w = np.array(base.weights)
    w[0, 0] += 1e-12
    assert spec_fingerprint(base) != spec_fingerprint(base.with_weights(w))
    assert spec_fingerprint(base) != spec_fingerprint(
        make_box_kernel(2, 3, np.random.default_rng(0))
    )
    assert spec_fingerprint(named_stencil("heat2d")) != spec_fingerprint(
        named_stencil("jacobi2d")
    )


def test_hit_on_identical_spec_fingerprint():
    cache = PlanCache(capacity=4)
    spec_a = named_stencil("heat2d")
    spec_b = named_stencil("heat2d")  # distinct object, same kernel
    key_a = plan_key_for(spec_a, grid_shape=(32, 32))
    key_b = plan_key_for(spec_b, grid_shape=(32, 32))
    assert key_a == key_b
    plan1 = cache.get_or_build(key_a, spec=spec_a)
    plan2 = cache.get_or_build(key_b, spec=spec_b)
    assert plan2 is plan1
    st = cache.stats()
    assert (st.hits, st.misses) == (1, 1)


@pytest.mark.parametrize("what", ["variant", "precision", "tile"])
def test_miss_on_configuration_change(what):
    cache = PlanCache(capacity=8)
    spec = named_stencil("heat2d")
    base = plan_key_for(
        spec, SpiderVariant.SPTC_CO, "exact", grid_shape=(32, 32)
    )
    if what == "variant":
        other = plan_key_for(
            spec, SpiderVariant.TC, "exact", grid_shape=(32, 32)
        )
    elif what == "precision":
        other = plan_key_for(
            spec, SpiderVariant.SPTC_CO, "fp16", grid_shape=(32, 32)
        )
    else:
        other = plan_key_for(
            spec, SpiderVariant.SPTC_CO, "exact", grid_shape=(64, 64)
        )
    assert other != base
    cache.get_or_build(base, spec=spec)
    cache.get_or_build(other, spec=spec)
    st = cache.stats()
    assert (st.hits, st.misses, st.size) == (0, 2, 2)


def test_lru_eviction_order():
    cache = PlanCache(capacity=2)
    spec = named_stencil("heat2d")
    ka = plan_key_for(spec, grid_shape=(16, 16))
    kb = plan_key_for(spec, grid_shape=(32, 32))
    kc = plan_key_for(spec, grid_shape=(64, 64))
    cache.get_or_build(ka, spec=spec)
    cache.get_or_build(kb, spec=spec)
    cache.get_or_build(ka, spec=spec)  # refresh A; B is now LRU
    cache.get_or_build(kc, spec=spec)  # evicts B
    assert kb not in cache
    assert ka in cache and kc in cache
    assert cache.keys() == (ka, kc)
    st = cache.stats()
    assert st.evictions == 1
    assert cache.lookup(kb) is None  # miss after eviction


def test_cached_plan_bit_identical_to_fresh_compile(rng):
    spec = named_stencil("wave2d")
    cache = PlanCache(capacity=2)
    key = plan_key_for(spec, grid_shape=(40, 48))
    plan = cache.get_or_build(key, spec=spec)
    grid = Grid.random((40, 48), rng)
    out_cached = Spider.from_plan(plan).run(grid)
    out_fresh = Spider(spec).run(grid)
    assert np.array_equal(out_cached, out_fresh)
    # second lookup returns the same plan object (no recompilation)
    assert cache.get_or_build(key, spec=spec) is plan
    assert np.array_equal(Spider.from_plan(plan).run(grid), out_fresh)


def test_plan_rejects_mismatched_spider_config():
    spec = named_stencil("heat2d")
    plan = build_compile_plan(spec)
    with pytest.raises(ValueError):
        Spider(named_stencil("jacobi2d"), plan=plan)
    with pytest.raises(ValueError):
        Spider(spec, "fp16", plan=plan)
    with pytest.raises(ValueError):
        Spider(spec, variant=SpiderVariant.TC, plan=plan)


def test_capacity_validation_and_clear():
    with pytest.raises(ValueError):
        PlanCache(capacity=0)
    cache = PlanCache(capacity=2)
    spec = named_stencil("heat1d")
    cache.get_or_build(plan_key_for(spec, grid_shape=(64,)), spec=spec)
    assert len(cache) == 1
    cache.clear()
    assert len(cache) == 0
    st = cache.stats()
    assert st.misses == 1  # counters survive clear


def test_get_or_build_requires_builder_or_spec():
    cache = PlanCache()
    key = plan_key_for(named_stencil("heat2d"), grid_shape=(8, 8))
    with pytest.raises(ValueError):
        cache.get_or_build(key)


def test_workspace_trim_frees_cold_geometries(rng):
    """trim() drops cold grid-shape workspaces from resident plans without
    touching the compiled artifacts; trimmed geometries rebuild lazily."""
    cache = PlanCache(capacity=4)
    spec = named_stencil("blur2d")
    key = plan_key_for(spec, grid_shape=())
    plan = cache.get_or_build(key, spec=spec)
    grids = [Grid.random(s, rng) for s in ((16, 16), (24, 20), (32, 12))]
    outs = [plan.executor.run(g) for g in grids]
    assert len(plan.executor._workspaces) == 3
    before = cache.stats().workspace_bytes
    freed = cache.trim(keep_geometries=1)
    assert freed > 0
    assert len(plan.executor._workspaces) == 1  # MRU geometry survives
    assert cache.stats().workspace_bytes == before - freed
    # trimmed geometries recompute bit-identically on their next request
    for g, out in zip(grids, outs):
        assert plan.executor.run(g).tobytes() == out.tobytes()
    with pytest.raises(ValueError):
        cache.trim(keep_geometries=-1)


def test_byte_based_eviction_trims_then_evicts(rng):
    """With max_workspace_bytes set, the cache evicts on resident *bytes*
    (fused operand + arena), not entry count: cold plans are trimmed
    first, then whole LRU plans go — the two MRU plans are spared (a
    temporal super-sweep keeps a plain/fused pair in flight)."""
    spec = named_stencil("heat2d")
    probe = PlanCache(capacity=8)
    kp = plan_key_for(spec, grid_shape=(48, 48))
    pp = probe.get_or_build(kp, spec=spec)
    pp.executor.run(Grid.random((48, 48), rng))
    one_plan_bytes = probe.stats().workspace_bytes
    assert one_plan_bytes > 0

    # budget fits two warm plans but not three
    cache = PlanCache(
        capacity=8, max_workspace_bytes=int(one_plan_bytes * 2.5)
    )
    keys = [plan_key_for(spec, grid_shape=(48, 48 + i)) for i in range(4)]
    warm = []
    for i, key in enumerate(keys):
        plan = cache.get_or_build(key, spec=spec)
        plan.executor.run(Grid.random((48, 48 + i), rng))
        warm.append(plan)
        # the *next* lookup notices the lazily-grown arena and enforces
        cache.get_or_build(key, spec=spec)
        st = cache.stats()
        assert st.workspace_bytes <= max(
            cache.max_workspace_bytes,
            sum(p.executor.workspace_nbytes() for p in warm[-2:]),
        )
        assert keys[i] in cache  # the MRU pair is never evicted
        if i >= 1:
            assert keys[i - 1] in cache
    # the budget forced action on the cold tail: trims or evictions
    st = cache.stats()
    assert st.evictions > 0 or warm[0].executor.workspace_nbytes() < (
        one_plan_bytes
    )
    with pytest.raises(ValueError):
        PlanCache(max_workspace_bytes=0)


def test_byte_cap_never_evicts_mru_pair(rng):
    """Plans larger than the cap stay resident while MRU (no thrash loop)."""
    spec = named_stencil("heat2d")
    cache = PlanCache(capacity=4, max_workspace_bytes=1)
    key = plan_key_for(spec, grid_shape=(32, 32))
    plan = cache.get_or_build(key, spec=spec)
    plan.executor.run(Grid.random((32, 32), rng))
    again = cache.get_or_build(key, spec=spec)
    assert again is plan
    assert len(cache) == 1
    key2 = plan_key_for(spec, grid_shape=(24, 24))
    plan2 = cache.get_or_build(key2, spec=spec)
    plan2.executor.run(Grid.random((24, 24), rng))
    cache.get_or_build(key2, spec=spec)
    # both members of the MRU pair survive even over budget
    assert key in cache and key2 in cache


def test_cache_stats_aggregate():
    parts = [
        CacheStats(hits=9, misses=1, evictions=0, size=1, capacity=4),
        CacheStats(hits=3, misses=2, evictions=1, size=2, capacity=4),
    ]
    agg = CacheStats.aggregate(parts)
    assert (agg.hits, agg.misses, agg.evictions) == (12, 3, 1)
    assert agg.hit_rate == pytest.approx(12 / 15)
    empty = CacheStats.aggregate([])
    assert empty.hit_rate == 0.0
