"""Equivalence tests for the SPIDER executor — the paper's central claim:
the transformed SpMM is mathematically equivalent to the stencil."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.executor import SpiderExecutor
from repro.core.pipeline import Spider, SpiderVariant
from repro.sptc.mma import MmaPrecision
from repro.stencil import (
    BoundaryCondition,
    Grid,
    make_box_kernel,
    make_star_kernel,
    naive_stencil,
    named_stencil,
)


class TestFastPathEquivalence:
    @pytest.mark.parametrize("r", [1, 2, 3, 4])
    def test_1d_box(self, rng, r):
        spec = make_box_kernel(1, r, rng)
        g = Grid.random((173,), rng)
        assert np.allclose(Spider(spec).run(g), naive_stencil(spec, g))

    @pytest.mark.parametrize("r", [1, 2, 3])
    @pytest.mark.parametrize("kind", ["box", "star"])
    def test_2d(self, rng, r, kind):
        make = make_box_kernel if kind == "box" else make_star_kernel
        spec = make(2, r, rng)
        g = Grid.random((23, 41), rng)
        assert np.allclose(Spider(spec).run(g), naive_stencil(spec, g))

    @pytest.mark.parametrize("kind", ["box", "star"])
    def test_3d(self, rng, kind):
        make = make_box_kernel if kind == "box" else make_star_kernel
        spec = make(3, 1, rng)
        g = Grid.random((7, 9, 11), rng)
        assert np.allclose(Spider(spec).run(g), naive_stencil(spec, g))

    def test_large_radius_7(self, rng):
        # Box-2D7R — the paper's Table-3 configuration (two mma.sp k-tiles)
        spec = make_box_kernel(2, 7, rng)
        g = Grid.random((18, 40), rng)
        assert np.allclose(Spider(spec).run(g), naive_stencil(spec, g))

    @pytest.mark.parametrize(
        "bc",
        [
            BoundaryCondition.ZERO,
            BoundaryCondition.PERIODIC,
            BoundaryCondition.NEAREST,
            BoundaryCondition.REFLECT,
        ],
    )
    def test_boundary_conditions(self, rng, bc):
        spec = make_box_kernel(2, 2, rng)
        g = Grid.random((19, 27), rng, bc)
        assert np.allclose(Spider(spec).run(g), naive_stencil(spec, g))

    def test_grid_not_multiple_of_L(self, rng):
        # n = 41 is not a multiple of L = 4 (r = 1): tail chunks trimmed
        spec = make_box_kernel(1, 1, rng)
        g = Grid.random((41,), rng)
        assert np.allclose(Spider(spec).run(g), naive_stencil(spec, g))

    def test_tiny_grid(self, rng):
        spec = make_box_kernel(2, 2, rng)
        g = Grid.random((1, 3), rng)
        assert np.allclose(Spider(spec).run(g), naive_stencil(spec, g))

    def test_batched_rows_consistent(self, rng):
        spec = make_box_kernel(2, 1, rng)
        g = Grid.random((64, 33), rng)
        a = SpiderExecutor(spec, batch_rows=7).run(g)
        b = SpiderExecutor(spec, batch_rows=512).run(g)
        assert np.allclose(a, b)

    @given(
        r=st.integers(1, 3),
        rows=st.integers(2, 20),
        cols=st.integers(3, 40),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_equivalence_property(self, r, rows, cols, seed):
        rng = np.random.default_rng(seed)
        spec = make_box_kernel(2, r, rng)
        g = Grid.random((rows, cols), rng)
        assert np.allclose(Spider(spec).run(g), naive_stencil(spec, g))

    def test_dims_mismatch_rejected(self, rng):
        spec = make_box_kernel(2, 1, rng)
        with pytest.raises(ValueError):
            Spider(spec).run(Grid.random((10,), rng))

    def test_named_application_stencils(self, rng):
        for name in ("heat2d", "jacobi2d", "blur2d", "wave2d", "heat1d", "wave1d"):
            spec = named_stencil(name)
            shape = (31,) if spec.dims == 1 else (17, 19)
            g = Grid.random(shape, rng)
            assert np.allclose(Spider(spec).run(g), naive_stencil(spec, g)), name


class TestPrecisionModes:
    def test_fp16_tolerance(self, rng):
        spec = make_box_kernel(2, 1, rng)
        g = Grid.random((16, 32), rng)
        out = Spider(spec, precision=MmaPrecision.FP16).run(g)
        ref = naive_stencil(spec, g)
        rel = np.abs(out - ref) / (np.abs(ref) + 1.0)
        assert rel.max() < 2e-2  # half-precision storage error

    def test_bad_precision_rejected(self, rng):
        with pytest.raises(ValueError):
            Spider(make_box_kernel(1, 1, rng), precision="int8")

    def test_bad_batch_rows_rejected(self, rng):
        with pytest.raises(ValueError):
            SpiderExecutor(make_box_kernel(1, 1, rng), batch_rows=0)


class TestVariants:
    def test_tc_variant_equivalent(self, rng):
        spec = make_box_kernel(2, 2, rng)
        g = Grid.random((14, 26), rng)
        out = Spider(spec, variant=SpiderVariant.TC).run(g)
        assert np.allclose(out, naive_stencil(spec, g))

    def test_tc_variant_issues_dense_mma(self, rng):
        spec = make_box_kernel(1, 1, rng)
        sp = Spider(spec, variant=SpiderVariant.TC)
        sp.run(Grid.random((40,), rng))
        assert sp.executor.stream.count("mma") > 0
        assert sp.executor.stream.count("mma.sp") == 0

    def test_sptc_variant_issues_sparse_mma(self, rng):
        spec = make_box_kernel(1, 1, rng)
        sp = Spider(spec)
        sp.run(Grid.random((40,), rng))
        assert sp.executor.stream.count("mma.sp") > 0
        assert sp.executor.stream.count("mma") == 0


class TestFaithfulPath:
    @pytest.mark.parametrize(
        "dims,r,shape",
        [(1, 1, (36,)), (1, 3, (40,)), (2, 1, (6, 12)), (2, 3, (5, 16)), (1, 7, (64,))],
    )
    def test_matches_reference(self, rng, dims, r, shape):
        spec = make_box_kernel(dims, r, rng)
        g = Grid.random(shape, rng)
        rep = Spider(spec).run_faithful(g)
        assert np.allclose(rep.output, naive_stencil(spec, g))

    def test_matches_fast_path(self, rng):
        spec = make_box_kernel(2, 2, rng)
        g = Grid.random((6, 18), rng)
        sp = Spider(spec)
        assert np.allclose(sp.run_faithful(g).output, sp.run(g))

    def test_without_row_swap_same_result_same_loads(self, rng):
        """Table 3 setup: both kernels compute the same thing; the
        integrated swap adds no loads or mma issues (only the explicit-copy
        variant pays extra stores)."""
        spec = make_box_kernel(2, 3, rng)
        g = Grid.random((5, 16), rng)
        sp = Spider(spec)
        with_swap = sp.run_faithful(g, apply_row_swap=True)
        without = sp.run_faithful(g, apply_row_swap=False)
        assert np.allclose(with_swap.output, without.output)
        assert with_swap.stream.count("lds") == without.stream.count("lds")
        assert with_swap.stream.count("mma.sp") == without.stream.count("mma.sp")
        assert with_swap.stream.count("sts") == 0
        assert without.stream.count("sts") > 0

    def test_identical_memory_audit(self, rng):
        """The swapped access pattern moves the same bytes in the same
        number of transactions with no extra bank conflicts (Table 3)."""
        spec = make_box_kernel(2, 3, rng)
        g = Grid.random((4, 16), rng)
        sp = Spider(spec)
        a = sp.run_faithful(g, apply_row_swap=True).smem_audit
        b = sp.run_faithful(g, apply_row_swap=False).smem_audit
        assert a.bytes_moved == b.bytes_moved
        assert a.transactions == b.transactions
        assert a.bank_conflicts == b.bank_conflicts

    def test_large_grid_rejected(self, rng):
        spec = make_box_kernel(2, 1, rng)
        with pytest.raises(ValueError, match="faithful"):
            Spider(spec).run_faithful(Grid.random((512, 512), rng))

    def test_tc_variant_not_supported(self, rng):
        spec = make_box_kernel(1, 1, rng)
        sp = Spider(spec, variant=SpiderVariant.TC)
        with pytest.raises(ValueError, match="SpTC"):
            sp.run_faithful(Grid.random((32,), rng))
