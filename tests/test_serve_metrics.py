"""Streaming metrics: bounded histograms, registry, Prometheus exposition.

The streaming histogram replaces the exact-sample one as the serving
default, so the contracts here are (a) agreement — percentiles within the
bucket resolution of the exact answer on random samples, count/mean/max
exactly equal — and (b) boundedness — memory grows with the data's
dynamic range, not its volume.  Plus the counter/gauge registry and the
Prometheus text format round-trip through the repo's own validator (the
same one CI runs against exported stats).
"""

import math
import threading

import numpy as np
import pytest

from repro.serve import (
    MetricsRegistry,
    ServiceStats,
    ServiceTelemetry,
    StreamingHistogram,
    validate_prometheus_text,
)
from repro.serve.plan_cache import CacheStats
from repro.serve.telemetry import Histogram


# ----------------------------------------------------------------------
# StreamingHistogram vs exact Histogram
# ----------------------------------------------------------------------


@pytest.mark.parametrize("dist", ["lognormal", "uniform", "exponential"])
def test_streaming_percentiles_agree_with_exact_within_resolution(dist):
    rng = np.random.default_rng(42)
    values = {
        "lognormal": rng.lognormal(0.0, 1.5, size=20_000),
        "uniform": rng.uniform(1e-6, 1e3, size=20_000),
        "exponential": rng.exponential(0.01, size=20_000),
    }[dist]
    exact = Histogram()
    stream = StreamingHistogram()
    exact.extend(values)
    stream.extend(values)
    # half-bucket resolution plus slack for the exact percentile's linear
    # interpolation landing anywhere inside a bucket
    tol = 2.0 * stream.relative_error + 0.01
    for p in (50, 90, 99):
        e, s = exact.percentile(p), stream.percentile(p)
        assert s == pytest.approx(e, rel=tol), f"p{p}: exact {e} stream {s}"


def test_streaming_tracks_count_sum_max_exactly():
    rng = np.random.default_rng(7)
    values = rng.lognormal(0, 2, size=5000)
    h = StreamingHistogram()
    h.extend(values)
    assert h.count == 5000
    assert h.mean == pytest.approx(float(np.mean(values)), rel=1e-12)
    assert h.max == float(np.max(values))
    assert h.min == float(np.min(values))
    # summary carries the exact fields the report consumers assert on
    s = h.summary(scale=1e3)
    assert s["count"] == 5000.0
    assert s["max"] == pytest.approx(float(np.max(values)) * 1e3)


def test_streaming_memory_bounded_by_dynamic_range_not_volume():
    h = StreamingHistogram()
    rng = np.random.default_rng(0)
    # a million samples spanning 12 decades stay under ~1000 buckets,
    # where the exact histogram would hold every sample
    h.extend(10.0 ** rng.uniform(-6, 6, size=100_000))
    buckets_at_100k = h.bucket_count
    assert buckets_at_100k < 1000
    h.extend(10.0 ** rng.uniform(-6, 6, size=100_000))
    assert h.bucket_count <= buckets_at_100k + 8  # range, not volume


def test_streaming_zero_and_negative_values():
    h = StreamingHistogram()
    h.extend([0.0, 0.0, -1.0, 2.0])
    assert h.count == 4
    assert h.min == -1.0
    assert h.max == 2.0
    assert h.percentile(50) == 0.0  # zero bucket dominates the median


def test_streaming_merge_equals_combined_recording():
    rng = np.random.default_rng(3)
    a_vals = rng.exponential(1.0, size=3000)
    b_vals = rng.exponential(5.0, size=3000)
    a, b, combined = (
        StreamingHistogram(),
        StreamingHistogram(),
        StreamingHistogram(),
    )
    a.extend(a_vals)
    b.extend(b_vals)
    combined.extend(a_vals)
    combined.extend(b_vals)
    a.merge(b)
    assert a.count == combined.count
    assert a.mean == pytest.approx(combined.mean)
    for p in (50, 90, 99):
        assert a.percentile(p) == pytest.approx(combined.percentile(p))


def test_streaming_merge_rejects_mismatched_base():
    with pytest.raises(ValueError, match="base"):
        StreamingHistogram(base=2.0).merge(StreamingHistogram(base=1.5))


def test_streaming_empty_summary_is_zeroes():
    s = StreamingHistogram().summary()
    assert s == {k: 0.0 for k in ("count", "mean", "p50", "p90", "p99", "max")}


# ----------------------------------------------------------------------
# ServiceTelemetry modes
# ----------------------------------------------------------------------


def _record_fake_batches(t: ServiceTelemetry, n: int = 50) -> None:
    class _R:
        steps = 1

        def __init__(self, sub):
            self.submitted_s = sub

    for i in range(n):
        base = float(i)
        t.record_batch([_R(base), _R(base + 0.001)], base + 0.01, base + 0.02)


def test_telemetry_streaming_default_and_exact_mode_agree():
    stream, exact = ServiceTelemetry(), ServiceTelemetry(exact=True)
    _record_fake_batches(stream)
    _record_fake_batches(exact)
    s, e = stream.snapshot(), exact.snapshot()
    assert s.requests == e.requests == 100
    assert s.batches == e.batches == 50
    # exact fields identical; percentiles within streaming resolution
    assert s.occupancy["max"] == e.occupancy["max"]
    assert s.occupancy["mean"] == pytest.approx(e.occupancy["mean"])
    assert s.latency_ms["p50"] == pytest.approx(e.latency_ms["p50"], rel=0.06)


def test_telemetry_errors_by_stage_breakdown():
    t = ServiceTelemetry()
    t.record_error([1, 2], stage="pack")
    t.record_error([3], stage="execute")
    t.record_error([4], stage="execute")
    snap = t.snapshot()
    assert snap.errors == 4
    assert snap.errors_by_stage == {"pack": 2, "execute": 2}
    assert sum(snap.errors_by_stage.values()) == snap.errors


# ----------------------------------------------------------------------
# registry + exposition
# ----------------------------------------------------------------------


def test_registry_counters_gauges_and_idempotent_registration():
    reg = MetricsRegistry()
    c1 = reg.counter("repro_test_ops_total", "ops")
    c2 = reg.counter("repro_test_ops_total")
    assert c1 is c2  # shards share one metric per name
    c1.inc()
    c2.inc(2.5)
    assert reg.snapshot()["repro_test_ops_total"] == 3.5
    g = reg.gauge("repro_test_depth", "queue depth")
    g.set(7)
    assert reg.snapshot()["repro_test_depth"] == 7.0
    g.set_function(lambda: 11.0)
    assert reg.snapshot()["repro_test_depth"] == 11.0
    with pytest.raises(ValueError):
        reg.gauge("repro_test_ops_total")  # kind mismatch
    with pytest.raises(ValueError):
        reg.counter("bad name!")
    with pytest.raises(ValueError):
        c1.inc(-1)


def test_registry_concurrent_increments_do_not_drop():
    reg = MetricsRegistry()
    c = reg.counter("repro_test_total")

    def bump():
        for _ in range(10_000):
            c.inc()

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == 80_000.0


def test_registry_prometheus_output_validates():
    reg = MetricsRegistry()
    reg.counter("repro_test_ops_total", "operations with \\ and\nnewline").inc(3)
    reg.gauge("repro_test_bytes", "resident bytes").set(1.5e9)
    text = reg.to_prometheus()
    n = validate_prometheus_text(text)
    assert n == 2
    assert "# TYPE repro_test_ops_total counter" in text
    assert "# TYPE repro_test_bytes gauge" in text


def test_service_stats_to_prometheus_validates_and_carries_stages():
    t = ServiceTelemetry()
    _record_fake_batches(t, n=10)
    t.record_error([1], stage="ipc")
    stats = ServiceStats(
        workers=2,
        submitted=20,
        inflight=0,
        telemetry=t.snapshot(),
        cache=CacheStats(5, 3, 0, 3, 64, 0),
        stages={"mac": {"count": 10.0, "total_s": 0.5, "mean_s": 0.05}},
    )
    text = stats.to_prometheus()
    validate_prometheus_text(text)
    assert 'repro_serve_stage_errors_total{stage="ipc"} 1.0' in text
    assert 'repro_serve_stage_seconds_total{stage="mac"} 0.5' in text
    assert "repro_serve_latency_seconds_count" in text
    assert "repro_serve_requests_total 20.0" in text


def test_prometheus_validator_rejects_malformed():
    with pytest.raises(ValueError, match="malformed sample"):
        validate_prometheus_text("not a metric line\n")
    with pytest.raises(ValueError, match="unknown metric type"):
        validate_prometheus_text("# TYPE repro_x widget\n")
    with pytest.raises(ValueError, match="duplicate TYPE"):
        validate_prometheus_text(
            "# TYPE repro_x counter\n# TYPE repro_x counter\n"
        )
    with pytest.raises(ValueError, match="after its samples"):
        validate_prometheus_text("repro_x 1\n# TYPE repro_x counter\n")
    # well-formed corner cases pass
    assert validate_prometheus_text("repro_x{a=\"b\"} 1e-3 1700000000\n") == 1
    assert validate_prometheus_text("repro_x +Inf\n") == 1
