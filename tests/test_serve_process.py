"""Cross-backend differential suite for `WorkerPool(backend="process")`.

The process backend ships requests to per-shard worker processes that
recompile plans from pure-data recipes into private plan caches.  That is
only shippable if equivalence is *enforced*: the same request stream
served by ``backend="thread"`` and ``backend="process"`` must return
byte-identical result arrays across dimensionalities, precisions and
boundary conditions.  This module also pins the lifecycle contract both
backends share — requests submitted before ``close()`` complete, submits
after ``close()`` raise, and no worker processes are left behind.
"""

import os
import time

import numpy as np
import pytest

from repro.serve import (
    RetryPolicy,
    ServeRequest,
    StencilService,
    WorkerPool,
    plan_key_for,
)
from repro.stencil import (
    BoundaryCondition,
    Grid,
    named_stencil,
    open_loop_stream,
    serving_workloads,
)

BACKENDS = ["thread", "process"]

#: dims 1/2/3, star+box, radii 1-2 — the differential coverage matrix.
MIXED_SHAPE_IDS = ["wave1d", "heat2d", "blur2d", "Star-2D2R", "heat3d"]

ALL_BCS = [
    BoundaryCondition.ZERO,
    BoundaryCondition.PERIODIC,
    BoundaryCondition.REFLECT,
    BoundaryCondition.NEAREST,
]


def _mixed_request_stream(n_requests=60, seed=11):
    """One deterministic open-loop trace cycling every boundary condition.

    The trace mixes 1D/2D/3D workloads (star and box footprints); each
    request's grid is re-wrapped with a cycling boundary condition so the
    stream covers dims x BCs in one pass.  Grid sides all exceed the
    largest radius, keeping REFLECT legal.
    """
    workloads = serving_workloads(
        MIXED_SHAPE_IDS,
        size_1d=(96,),
        size_2d=(18, 22),
        size_3d=(7, 8, 9),
        seed=seed,
    )
    trace = list(open_loop_stream(workloads, n_requests, 500.0, seed=seed))
    return [
        (r.spec, Grid(r.grid.data, ALL_BCS[i % len(ALL_BCS)]))
        for i, r in enumerate(trace)
    ]


def _serve(requests, *, backend, precision="exact", workers=2):
    with StencilService(
        workers=workers,
        backend=backend,
        precision=precision,
        max_batch_size=4,
        max_wait_s=0.001,
    ) as svc:
        handles = [svc.submit(spec, grid) for spec, grid in requests]
        svc.drain()
        stats = svc.stats()
    assert stats.telemetry.errors == 0
    assert stats.backend == backend
    return [h.result() for h in handles]


# ----------------------------------------------------------------------
# differential: thread vs process, byte-identical
# ----------------------------------------------------------------------


@pytest.mark.parametrize("precision", ["exact", "fp16"])
def test_cross_backend_bit_identity(precision):
    """The same open-loop stream returns byte-identical arrays on both
    backends, across dims x precision x boundary conditions."""
    requests = _mixed_request_stream()
    thread_outs = _serve(requests, backend="thread", precision=precision)
    process_outs = _serve(requests, backend="process", precision=precision)
    assert len(thread_outs) == len(process_outs) == len(requests)
    for a, b in zip(thread_outs, process_outs):
        assert a.dtype == b.dtype
        assert a.shape == b.shape
        assert np.array_equal(a, b)
        assert a.tobytes() == b.tobytes()


def test_cross_backend_identity_survives_worker_count():
    """Sharding differently (1 vs 3 workers) cannot perturb results."""
    requests = _mixed_request_stream(n_requests=30, seed=5)
    base = _serve(requests, backend="thread", workers=1)
    for backend in BACKENDS:
        outs = _serve(requests, backend=backend, workers=3)
        for a, b in zip(base, outs):
            assert a.tobytes() == b.tobytes()


@pytest.mark.parametrize("backend", BACKENDS)
def test_error_routed_to_future_worker_survives(backend, rng):
    spec2d = named_stencil("heat2d")
    with StencilService(workers=2, backend=backend) as svc:
        bad = svc.submit(spec2d, Grid.random((32,), rng))  # 1D grid, 2D spec
        with pytest.raises(Exception):
            bad.result(timeout=30)
        good = svc.submit(spec2d, Grid.random((16, 16), rng))
        out = good.result(timeout=30)
        assert out.shape == (16, 16)
        stats = svc.stats()
    assert stats.telemetry.errors == 1


@pytest.mark.parametrize("backend", BACKENDS)
def test_cache_stats_aggregate_across_shards(backend):
    requests = _mixed_request_stream(n_requests=40, seed=3)
    with StencilService(
        workers=2, backend=backend, max_batch_size=4, max_wait_s=0.001
    ) as svc:
        for spec, grid in requests:
            svc.submit(spec, grid)
        svc.drain()
        stats = svc.stats()
    # every distinct (spec, shape) compiles exactly once pool-wide ...
    distinct = len({(id(spec), grid.shape) for spec, grid in requests})
    assert stats.cache.misses == len(
        {plan_key_for(spec, grid_shape=g.shape) for spec, g in requests}
    )
    assert distinct == stats.cache.misses
    # ... and the remaining lookups hit warm per-shard caches
    assert stats.cache.hits + stats.cache.misses == stats.telemetry.batches
    assert stats.cache.workspace_bytes > 0


# ----------------------------------------------------------------------
# drain / shutdown regression (both backends)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_requests_submitted_before_close_complete(backend, rng):
    spec = named_stencil("blur2d")
    svc = StencilService(
        workers=2, backend=backend, max_batch_size=8, max_wait_s=0.05
    )
    handles = [
        svc.submit(spec, Grid.random((20, 20), rng)) for _ in range(24)
    ]
    # close without drain: the pool's drain semantics must finish them
    svc.close()
    assert all(h.done() for h in handles)
    assert all(not h.failed for h in handles)
    outs = [h.result(timeout=0) for h in handles]
    assert all(o.shape == (20, 20) for o in outs)


@pytest.mark.parametrize("backend", BACKENDS)
def test_submit_after_close_raises(backend, rng):
    spec = named_stencil("heat2d")
    svc = StencilService(workers=2, backend=backend)
    svc.submit(spec, Grid.random((12, 12), rng))
    svc.close()
    with pytest.raises(RuntimeError):
        svc.submit(spec, Grid.random((12, 12), rng))


@pytest.mark.parametrize("backend", BACKENDS)
def test_pool_submit_after_close_raises(backend, rng):
    pool = WorkerPool(2, backend=backend)
    pool.close()
    spec = named_stencil("heat2d")
    grid = Grid.random((10, 10), rng)
    req = ServeRequest(
        0, spec, grid, plan_key_for(spec, grid_shape=grid.shape), 0.0
    )
    with pytest.raises(RuntimeError):
        pool.submit(req)


def test_no_orphaned_worker_processes(rng):
    pool = WorkerPool(2, backend="process", max_wait_s=0.001)
    spec = named_stencil("heat2d")
    reqs = []
    for i in range(6):
        grid = Grid.random((14, 14), rng)
        reqs.append(
            ServeRequest(
                i,
                spec,
                grid,
                plan_key_for(spec, grid_shape=grid.shape),
                time.monotonic(),
            )
        )
        pool.submit(reqs[-1])
    pids = [p.pid for p in pool.workers]
    assert all(isinstance(pid, int) for pid in pids)
    pool.close(join=True)
    # drained: every request resolved before the workers exited
    assert all(r.done() and not r.failed for r in reqs)
    # no orphans: every worker process has exited cleanly after join
    assert all(not p.is_alive() for p in pool.workers)
    assert all(p.exitcode == 0 for p in pool.workers)


def test_dead_worker_fails_futures_instead_of_hanging(rng):
    """A worker killed mid-flight (OOM-kill stand-in) must fail its
    pending requests with an explicit error — and close() must return.
    Pins the pre-self-healing contract: recovery disabled."""
    pool = WorkerPool(
        1,
        backend="process",
        max_wait_s=10.0,
        retry_policy=RetryPolicy.disabled(),
    )
    spec = named_stencil("heat2d")
    grid = Grid.random((12, 12), rng)
    req = ServeRequest(
        0, spec, grid, plan_key_for(spec, grid_shape=grid.shape), 0.0
    )
    # a huge coalescing window keeps the request parked in the parent
    # until close(); kill the worker before it can ever serve the batch
    pool.workers[0].terminate()
    pool.workers[0].join()
    pool.submit(req)
    pool.close(join=True)
    assert req.done() and req.failed
    with pytest.raises(RuntimeError, match="died unexpectedly"):
        req.result(timeout=0)
    assert not pool.workers[0].is_alive()


def test_submit_to_reaped_dead_shard_raises(rng):
    """Once a dead shard has been reaped (recovery disabled), new submits
    routed to it must be rejected immediately — not accepted into a queue
    nobody consumes."""
    pool = WorkerPool(
        1,
        backend="process",
        max_wait_s=0.001,
        retry_policy=RetryPolicy.disabled(),
    )
    spec = named_stencil("heat2d")
    pool.workers[0].terminate()
    pool.workers[0].join()
    # the dispatcher reaps on its idle poll; wait for it
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        with pool._pending_lock:
            if 0 in pool._dead_shards:
                break
        time.sleep(0.05)
    else:
        pytest.fail("dead worker was never reaped")
    grid = Grid.random((10, 10), rng)
    req = ServeRequest(
        0, spec, grid, plan_key_for(spec, grid_shape=grid.shape), 0.0
    )
    with pytest.raises(RuntimeError, match="died unexpectedly"):
        pool.submit(req)
    pool.close(join=True)


def test_process_close_is_idempotent(rng):
    svc = StencilService(workers=2, backend="process")
    svc.submit(named_stencil("heat2d"), Grid.random((12, 12), rng))
    svc.close()
    svc.close()  # second close must be a no-op, not a hang or error
    assert all(not p.is_alive() for p in svc._pool.workers)


def test_process_pool_safe_with_live_parent_threads(rng):
    """Creating a process pool while other threads are alive must avoid
    bare fork (thread-unsafe, deprecated on 3.12+) yet still serve
    bit-identically — this pins the forkserver/spawn context path."""
    spec = named_stencil("heat2d")
    grid = Grid.random((16, 16), rng)
    thread_svc = StencilService(workers=2, backend="thread")
    try:
        expected = thread_svc.run(spec, grid, timeout=60)
        # thread_svc's workers are alive here, so the new pool must pick
        # a non-fork start method
        with StencilService(workers=2, backend="process") as proc_svc:
            out = proc_svc.run(spec, grid, timeout=120)
        assert out.tobytes() == expected.tobytes()
    finally:
        thread_svc.close()
    with pytest.raises(ValueError, match="backend"):
        WorkerPool(1, backend="fiber")
    with pytest.raises(ValueError, match="backend"):
        StencilService(workers=1, backend="fiber")
