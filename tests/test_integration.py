"""Cross-module integration tests: multi-step simulations through SPIDER."""

import numpy as np
import pytest

from repro import Grid, Spider, named_stencil
from repro.stencil import (
    BoundaryCondition,
    l2_error,
    make_box_kernel,
    run_iterations,
    vectorized_stencil,
)


class TestMultiStep:
    def test_ten_step_heat_matches_reference(self, rng):
        spec = named_stencil("heat2d")
        g = Grid.random((48, 48), rng)
        spider = Spider(spec)

        final_sp, _ = run_iterations(
            spec, g, 10, executor=lambda s, gr: spider.run(gr)
        )
        final_ref, _ = run_iterations(spec, g, 10)
        assert l2_error(final_sp.data, final_ref.data) < 1e-12

    def test_jacobi_converges_to_zero_with_zero_bc(self, rng):
        # Jacobi iteration on the homogeneous problem decays like
        # cos(pi/(n+1))^steps with Dirichlet-0 boundaries
        spec = named_stencil("jacobi2d")
        g = Grid(np.abs(rng.standard_normal((16, 16))))
        spider = Spider(spec)
        final, _ = run_iterations(
            spec, g, 600, executor=lambda s, gr: spider.run(gr)
        )
        assert np.abs(final.data).max() < 1e-3 * np.abs(g.data).max()

    def test_periodic_wave_energy_reasonable(self, rng):
        spec = named_stencil("heat1d")
        g = Grid.random((128,), rng, BoundaryCondition.PERIODIC)
        spider = Spider(spec)
        out = spider.run(g)
        # periodic smoothing preserves the mean exactly
        assert out.mean() == pytest.approx(g.data.mean(), rel=1e-10)

    def test_mixed_executors_interchangeable(self, rng):
        spec = make_box_kernel(2, 2, rng)
        g = Grid.random((20, 28), rng)
        spider = Spider(spec)
        a = spider.run(g.like(vectorized_stencil(spec, g)))
        b = vectorized_stencil(spec, g.like(spider.run(g)))
        assert np.allclose(a, b)


class TestInstructionAccounting:
    def test_issue_counts_scale_with_grid(self, rng):
        spec = make_box_kernel(2, 1, rng)
        sp1 = Spider(spec)
        sp1.run(Grid.random((16, 16), rng))
        n1 = sp1.executor.stream.count("mma.sp")
        sp2 = Spider(spec)
        sp2.run(Grid.random((32, 32), rng))
        n2 = sp2.executor.stream.count("mma.sp")
        assert n2 > n1 * 2

    def test_issue_counts_scale_with_kernel_rows(self, rng):
        g_shape = (24, 24)
        sp1 = Spider(make_box_kernel(2, 1, rng))
        sp1.run(Grid.random(g_shape, rng))
        sp3 = Spider(make_box_kernel(2, 3, rng))
        sp3.run(Grid.random(g_shape, rng))
        # 7 kernel rows vs 3
        assert sp3.executor.stream.count("mma.sp") > sp1.executor.stream.count(
            "mma.sp"
        )
