"""Tests for zero-cost runtime row swapping (§3.2, Table 3)."""

import numpy as np
import pytest

from repro.core.kernel_matrix import padded_width
from repro.core.row_swap import (
    RowSwapStrategy,
    baseline_offset_expr,
    baseline_row_offset_fn,
    offset_table,
    strategy_for,
    swapped_offset_expr,
    swapped_row_offset_fn,
)
from repro.core.swapping import strided_permutation
from repro.gpu.jit import count_ops, evaluate, unroll


class TestStrategySelection:
    def test_folded_for_L_multiple_of_8(self):
        # r = 3 (L=8), r = 7 (L=16), r = 11 (L=24)
        for r in (3, 7, 11):
            assert strategy_for(r) is RowSwapStrategy.FOLDED_OFFSET

    def test_store_permute_otherwise(self):
        for r in (1, 2, 4, 5, 6):
            assert strategy_for(r) is RowSwapStrategy.STORE_PERMUTE


class TestOffsetFunctions:
    @pytest.mark.parametrize("r", [1, 2, 3, 5, 7])
    def test_swapped_fn_equals_permutation(self, r):
        """The runtime offset function IS the strided permutation."""
        from repro.core.kernel_matrix import choose_L

        L = choose_L(r)
        width = padded_width(r)
        perm = strided_permutation(L, width)
        for kk in range(width // 16):
            fn = swapped_row_offset_fn(r, kk)
            base = baseline_row_offset_fn(kk)
            for lane in range(32):
                for i in range(4):
                    b = base(lane, i)
                    expected = perm[b] if b < width else b
                    assert fn(lane, i) == expected

    def test_offset_table_complete(self):
        table = offset_table(3)
        assert len(table) == (padded_width(3) // 16) * 32 * 4


class TestSymbolicFold:
    @pytest.mark.parametrize("r", [3, 7, 11])
    def test_zero_instruction_overhead(self, r):
        """Table 3's mechanism: after unrolling (i, k), the swapped offset
        expression folds to exactly the same instruction count as the
        baseline — zero runtime cost."""
        base = baseline_offset_expr()
        swapped = swapped_offset_expr(r)
        width = padded_width(r)
        for k in range(width // 16):
            for i in range(4):
                ub = unroll(base, {"i": i})
                us = unroll(swapped, {"i": i, "k": k})
                assert count_ops(us) == count_ops(ub)

    @pytest.mark.parametrize("r", [3, 7])
    def test_folded_values_match_oracle(self, r):
        swapped = swapped_offset_expr(r)
        table = offset_table(r)
        width = padded_width(r)
        for k in range(width // 16):
            for i in range(4):
                for lane in (0, 3, 17, 31):
                    val = evaluate(swapped, {"i": i, "k": k, "lane": lane})
                    assert k * 16 + val == table[(k, lane, i)]

    def test_paper_pm16_term_for_r7(self):
        """Box-2D7R: the swap term is ±16 on odd-row elements, 0 on even —
        the paper's 16·(−1)^k structure (modulo its 0/1-based parity)."""
        swapped = swapped_offset_expr(7)
        base = baseline_offset_expr()
        for k in (0, 1):
            for i in range(4):
                for lane in (0, 9, 22):
                    delta = evaluate(swapped, {"i": i, "k": k, "lane": lane}) - (
                        evaluate(base, {"i": i, "lane": lane})
                    )
                    if i % 2 == 1:  # swapped-parity elements
                        assert delta == 16 * (-1) ** k
                    else:
                        assert delta == 0

    def test_unfoldable_radius_raises(self):
        with pytest.raises(ValueError, match="STORE_PERMUTE"):
            swapped_offset_expr(2)
