"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def rng2():
    return np.random.default_rng(987654)


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: slow emulator-level tests")
