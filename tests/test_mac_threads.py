"""Differential and lifecycle suite for the multi-threaded ordered MAC.

The contract under test: spreading the fused ``K_all @ X`` product over
column blocks on the plan-owned :class:`~repro.sptc.macpool.MacThreadPool`
is **byte-identical** to the serial MAC for every thread count and block
width >= 2 — each output element's einsum reduction order is a function
of the w axis alone, so disjoint ``out[:, c0:c1]`` slices cannot perturb
it.  The suite pins that identity across dims x precision x boundary
conditions x temporal modes on the thread, process and sync serving
backends, plus the pool's lifecycle contract: lazy creation, exclusion
from pickles, shutdown on plan-cache eviction/trim/clear and service
close, and fork safety.

Small grids take the serial fast path under the default 4096-column
threshold, so every differential case here pins ``mac_col_block`` low —
otherwise "threads=4" would silently test the serial loop twice.
"""

import os
import pickle
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_compile_plan
from repro.core.executor import SpiderExecutor
from repro.serve import PlanCache, StencilService, plan_key_for
from repro.sptc.macpool import (
    MAC_THREADS_ENV,
    MacThreadPool,
    col_blocks,
    live_mac_threads,
    resolve_mac_threads,
    split_ranges,
)
from repro.stencil import (
    BoundaryCondition,
    Grid,
    make_box_kernel,
    make_star_kernel,
    named_stencil,
)

ALL_BCS = [
    BoundaryCondition.ZERO,
    BoundaryCondition.PERIODIC,
    BoundaryCondition.REFLECT,
    BoundaryCondition.NEAREST,
]

#: forces the threaded path on test-sized grids (default 4096 would not)
SMALL_BLOCK = 8


def _run_released(spec, grid, **kw):
    """One sweep through a throwaway executor, pool released after."""
    ex = SpiderExecutor(spec, **kw)
    try:
        return ex.run(grid)
    finally:
        ex.release_mac_pool()


# ----------------------------------------------------------------------
# unit: block planning and thread resolution
# ----------------------------------------------------------------------


def test_col_blocks_covers_and_merges_one_wide_remainder():
    assert col_blocks(8, 4) == [(0, 4), (4, 8)]
    # remainder of one column merges into the final block: einsum's n=1
    # call shape uses a different kernel
    assert col_blocks(9, 4) == [(0, 4), (4, 9)]
    assert col_blocks(5, 2) == [(0, 2), (2, 5)]
    assert col_blocks(1, 4) == [(0, 1)]  # n=1 total: nothing to merge with
    assert col_blocks(0, 4) == []
    for n, block in [(1000, 7), (64, 64), (65, 64), (3, 2)]:
        blocks = col_blocks(n, block)
        assert blocks[0][0] == 0 and blocks[-1][1] == n
        assert all(a1 == b0 for (_, a1), (b0, _) in zip(blocks, blocks[1:]))
        if n >= 2:
            assert all(c1 - c0 >= 2 for c0, c1 in blocks)


def test_col_blocks_rejects_width_below_two():
    with pytest.raises(ValueError, match="block"):
        col_blocks(16, 1)


def test_split_ranges_near_even_cover():
    assert split_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]
    assert split_ranges(2, 5) == [(0, 1), (1, 2)]  # parts clamp to n
    assert split_ranges(6, 1) == [(0, 6)]
    for n, parts in [(17, 4), (100, 7), (3, 3)]:
        ranges = split_ranges(n, parts)
        widths = [i1 - i0 for i0, i1 in ranges]
        assert sum(widths) == n and max(widths) - min(widths) <= 1


def test_resolve_mac_threads_explicit_beats_env(monkeypatch):
    monkeypatch.setenv(MAC_THREADS_ENV, "7")
    assert resolve_mac_threads(3) == 3  # explicit request wins outright
    assert resolve_mac_threads(None) == 7
    monkeypatch.delenv(MAC_THREADS_ENV)
    cores = os.cpu_count() or 1
    assert resolve_mac_threads(None) == max(1, cores)
    assert resolve_mac_threads(None, shards=cores + 1) == 1  # floor at 1


def test_resolve_mac_threads_rejects_bad_values(monkeypatch):
    with pytest.raises(ValueError, match="mac_threads"):
        resolve_mac_threads(0)
    with pytest.raises(ValueError, match="mac_threads"):
        resolve_mac_threads(-3)
    monkeypatch.setenv(MAC_THREADS_ENV, "lots")
    with pytest.raises(ValueError, match=MAC_THREADS_ENV):
        resolve_mac_threads(None)


@pytest.mark.parametrize("env_value", ["0", "-2"])
def test_resolve_mac_threads_env_rejects_nonpositive(monkeypatch, env_value):
    """The env path raises like the explicit path — no silent clamp to 1.

    ``REPRO_MAC_THREADS=0`` used to resolve to a serial MAC via
    ``max(1, ...)``, hiding misconfigured deployments; both paths now
    enforce the same >= 1 contract.
    """
    monkeypatch.setenv(MAC_THREADS_ENV, env_value)
    with pytest.raises(ValueError, match=MAC_THREADS_ENV):
        resolve_mac_threads(None)
    # an explicit request still wins outright and never consults the env
    assert resolve_mac_threads(3) == 3


def test_pool_runs_all_tasks_and_is_reusable():
    pool = MacThreadPool(3)
    try:
        out = np.zeros(37)

        def fill(i0, i1):
            out[i0:i1] = np.arange(i0, i1)

        for _ in range(3):  # steady-state reuse, same generation machinery
            out[:] = 0
            pool.run(fill, split_ranges(37, 6))
            assert np.array_equal(out, np.arange(37.0))
    finally:
        pool.shutdown()


def test_pool_propagates_first_error_and_survives():
    pool = MacThreadPool(2)
    try:

        def boom(i):
            raise RuntimeError(f"task {i}")

        with pytest.raises(RuntimeError, match="task"):
            pool.run(boom, [(0,), (1,), (2,)])
        # an error must not wedge the generation barrier
        hits = []
        pool.run(lambda i: hits.append(i), [(0,), (1,)])
        assert sorted(hits) == [0, 1]
    finally:
        pool.shutdown()


def test_pool_shutdown_idempotent_and_run_after_raises():
    baseline = live_mac_threads()
    pool = MacThreadPool(4)
    assert live_mac_threads() == baseline + 3  # caller is the 4th thread
    assert pool.pid == os.getpid()
    pool.shutdown()
    pool.shutdown()  # idempotent
    assert pool.closed
    assert live_mac_threads() == baseline
    with pytest.raises(RuntimeError, match="shut down"):
        pool.run(lambda: None, [()])


def test_pool_needs_at_least_two_threads():
    with pytest.raises(ValueError, match="threads"):
        MacThreadPool(1)


# ----------------------------------------------------------------------
# differential: executor, threads=1 vs threads=N byte-identical
# ----------------------------------------------------------------------

DIFF_CASES = [
    ("box", 1, 1, (97,)),
    ("star", 1, 3, (64,)),
    ("box", 2, 2, (18, 23)),
    ("star", 2, 1, (16, 16)),
    ("box", 3, 1, (7, 8, 9)),
]


@pytest.mark.parametrize("precision", ["exact", "fp16"])
@pytest.mark.parametrize(
    "kind,dims,radius,shape",
    DIFF_CASES,
    ids=[f"{k}{d}D-r{r}" for k, d, r, _ in DIFF_CASES],
)
def test_threaded_mac_bit_identical(kind, dims, radius, shape, precision):
    """threads=1 vs threads=4 across dims x precision x all BCs."""
    rng = np.random.default_rng(dims * 10 + radius)
    make = make_box_kernel if kind == "box" else make_star_kernel
    spec = make(dims, radius, rng)
    for bc in ALL_BCS:
        grid = Grid(rng.standard_normal(shape), bc)
        serial = _run_released(spec, grid, precision=precision, mac_threads=1)
        threaded = _run_released(
            spec,
            grid,
            precision=precision,
            mac_threads=4,
            mac_col_block=SMALL_BLOCK,
        )
        assert serial.dtype == threaded.dtype
        assert serial.tobytes() == threaded.tobytes(), (kind, bc)


def test_block_width_never_perturbs_numerics():
    """Any block width >= 2 (including widths that leave a remainder)
    matches the serial default-width MAC byte-for-byte."""
    rng = np.random.default_rng(7)
    spec = make_box_kernel(2, 2, rng)
    grid = Grid.random((24, 31), rng)
    base = _run_released(spec, grid, mac_threads=1)
    for block in (2, 3, 5, 64):
        out = _run_released(spec, grid, mac_threads=3, mac_col_block=block)
        assert out.tobytes() == base.tobytes(), block


def test_batched_sweeps_bit_identical_under_threads():
    """run_batch (the serving execution shape) is thread-invariant too."""
    rng = np.random.default_rng(21)
    spec = make_star_kernel(2, 2, rng)
    grids = [Grid.random((14, 17), rng) for _ in range(5)]
    ex1 = SpiderExecutor(spec, mac_threads=1)
    exN = SpiderExecutor(spec, mac_threads=4, mac_col_block=SMALL_BLOCK)
    try:
        assert (
            ex1.run_batch(grids).tobytes() == exN.run_batch(grids).tobytes()
        )
    finally:
        exN.release_mac_pool()


def test_all_zero_kernel_skips_gemm_identically():
    """m_active == 0 (every kernel row compacted away): no GEMM is
    issued on either path and the output is exactly zero."""
    rng = np.random.default_rng(3)
    spec = make_box_kernel(2, 1, rng)
    zero = spec.with_weights(np.zeros_like(np.asarray(spec.weights)))
    grid = Grid.random((12, 14), rng)
    serial = _run_released(zero, grid, mac_threads=1)
    threaded = _run_released(
        zero, grid, mac_threads=3, mac_col_block=SMALL_BLOCK
    )
    assert not np.any(serial)
    assert serial.tobytes() == threaded.tobytes()


@given(
    dims=st.integers(1, 2),
    radius=st.integers(1, 2),
    side=st.integers(1, 9),
    threads=st.integers(2, 5),
    block=st.integers(2, 9),
    fp16=st.booleans(),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=40, deadline=None)
def test_degenerate_shapes_thread_invariant(
    dims, radius, side, threads, block, fp16, seed
):
    """Property: tiny and degenerate grids — down to a single cell, where
    the executor zero-pads the GEMM to its 2-column minimum — are
    byte-identical between the serial and threaded MAC, fp16 included."""
    rng = np.random.default_rng(seed)
    spec = make_box_kernel(dims, radius, rng)
    shape = (side,) * dims
    grid = Grid(rng.standard_normal(shape), BoundaryCondition.ZERO)
    precision = "fp16" if fp16 else "exact"
    serial = _run_released(spec, grid, precision=precision, mac_threads=1)
    threaded = _run_released(
        spec,
        grid,
        precision=precision,
        mac_threads=threads,
        mac_col_block=block,
    )
    assert serial.tobytes() == threaded.tobytes()


# ----------------------------------------------------------------------
# lifecycle: lazy pools, pickling, cache teardown, fork safety
# ----------------------------------------------------------------------


def test_pool_created_lazily_and_only_when_parallel():
    baseline = live_mac_threads()
    rng = np.random.default_rng(0)
    ex = SpiderExecutor(
        make_box_kernel(2, 1, rng), mac_threads=3, mac_col_block=SMALL_BLOCK
    )
    op = ex.fused_operator
    assert op._mac_pool is None  # building a plan parks no threads
    assert live_mac_threads() == baseline
    try:
        ex.run(Grid.random((16, 16), rng))
        assert op._mac_pool is not None
        assert live_mac_threads() == baseline + 2
    finally:
        ex.release_mac_pool()
    assert live_mac_threads() == baseline
    # a serial plan never creates a pool at all
    ex1 = SpiderExecutor(make_box_kernel(2, 1, rng), mac_threads=1)
    ex1.run(Grid.random((16, 16), rng))
    assert ex1.fused_operator._mac_pool is None
    assert live_mac_threads() == baseline


def test_pickle_excludes_pool_and_ships_requested_values():
    rng = np.random.default_rng(5)
    spec = make_box_kernel(2, 2, rng)
    grid = Grid.random((14, 14), rng)
    ex = SpiderExecutor(spec, mac_threads=3, mac_col_block=SMALL_BLOCK)
    try:
        expected = ex.run(grid)
        assert ex.fused_operator._mac_pool is not None
        clone = pickle.loads(pickle.dumps(ex))
    finally:
        ex.release_mac_pool()
    op = clone.fused_operator
    assert op._mac_pool is None  # pool never crosses a pickle
    assert op.mac_threads == 3  # requested values survive the roundtrip
    assert op.mac_col_block == SMALL_BLOCK
    try:
        assert clone.run(grid).tobytes() == expected.tobytes()
    finally:
        clone.release_mac_pool()


def test_rehydrated_plan_re_resolves_adaptive_threads(monkeypatch):
    """A plan pickled with the adaptive default re-resolves in the
    *receiving* environment — the process-backend contract."""
    rng = np.random.default_rng(5)
    ex = SpiderExecutor(make_box_kernel(1, 1, rng))  # mac_threads=None
    payload = pickle.dumps(ex)
    monkeypatch.setenv(MAC_THREADS_ENV, "5")
    clone = pickle.loads(payload)
    assert clone.fused_operator.mac_threads == 5


def test_plan_cache_eviction_trim_clear_shut_pools_down():
    baseline = live_mac_threads()
    rng = np.random.default_rng(9)
    cache = PlanCache(
        capacity=1, mac_threads=3, mac_col_block=SMALL_BLOCK
    )
    spec_a, spec_b = named_stencil("heat2d"), named_stencil("jacobi2d")
    grid = Grid.random((16, 16), rng)

    plan_a = cache.get_or_build(
        plan_key_for(spec_a, grid_shape=(16, 16)), spec=spec_a
    )
    plan_a.executor.run(grid)
    assert live_mac_threads() == baseline + 2
    # capacity-1 LRU eviction must tear the evicted plan's pool down
    cache.get_or_build(
        plan_key_for(spec_b, grid_shape=(16, 16)), spec=spec_b
    )
    assert live_mac_threads() == baseline

    plan_b = cache.lookup(plan_key_for(spec_b, grid_shape=(16, 16)))
    plan_b.executor.run(grid)
    assert live_mac_threads() == baseline + 2
    cache.trim(0)  # trim releases pools alongside the arenas
    assert live_mac_threads() == baseline

    plan_b.executor.run(grid)  # pool re-creates lazily after trim
    assert live_mac_threads() == baseline + 2
    cache.clear()
    assert live_mac_threads() == baseline


def test_stale_foreign_pid_pool_dropped_never_joined():
    """A pool object 'inherited from another process' (simulated by a
    foreign pid) is dropped without shutdown — its threads don't exist in
    this process — and a fresh pool is built under the current pid."""
    rng = np.random.default_rng(1)
    ex = SpiderExecutor(
        make_box_kernel(2, 1, rng), mac_threads=2, mac_col_block=SMALL_BLOCK
    )
    grid = Grid.random((16, 16), rng)
    try:
        expected = ex.run(grid)
        op = ex.fused_operator
        stale = op._pool()
        stale.pid = os.getpid() + 1  # simulate a fork-inherited pool
        fresh = op._pool()
        assert fresh is not stale
        assert not stale.closed  # dropped, never joined
        assert op.shutdown_pool() is None  # foreign pool: no-op too
        stale.pid = os.getpid()  # let the test clean it up for real
        stale.shutdown()
        assert ex.run(grid).tobytes() == expected.tobytes()
    finally:
        ex.release_mac_pool()


# ----------------------------------------------------------------------
# differential + lifecycle through the serving stack
# ----------------------------------------------------------------------


def _serve_all(requests, *, mac_threads, backend="thread", workers=2, **kw):
    with StencilService(
        workers=workers,
        backend=backend,
        max_batch_size=4,
        max_wait_s=0.001,
        mac_threads=mac_threads,
        mac_col_block=SMALL_BLOCK,
        **kw,
    ) as svc:
        handles = [
            svc.submit(spec, grid.copy(), steps=steps)
            for spec, grid, steps in requests
        ]
        svc.drain()
        stats = svc.stats()
    assert stats.telemetry.errors == 0
    assert stats.mac_threads == mac_threads
    return [h.result() for h in handles]


def _serving_requests(seed=13):
    """Mixed dims x BCs x steps request list (steps>1 covers the temporal
    super-sweep path under threading)."""
    rng = np.random.default_rng(seed)
    cases = [
        ("wave1d", (64,)),
        ("heat2d", (18, 22)),
        ("blur2d", (16, 16)),
        ("heat3d", (7, 8, 9)),
    ]
    out = []
    for i, (name, shape) in enumerate(cases):
        for steps in (1, 3):
            bc = ALL_BCS[(i + steps) % len(ALL_BCS)]
            out.append(
                (named_stencil(name), Grid(rng.standard_normal(shape), bc), steps)
            )
    return out


@pytest.mark.parametrize("backend,workers", [
    ("thread", 2),
    ("process", 2),
    ("thread", 0),  # workers=0: the in-thread sync path
], ids=["thread", "process", "sync"])
def test_serving_bit_identical_across_thread_counts(backend, workers):
    """The full serving stack (batching, plan cache, worker shards,
    temporal super-sweeps) returns byte-identical arrays for
    mac_threads=1 vs 3 on every backend."""
    requests = _serving_requests()
    serial = _serve_all(
        requests, mac_threads=1, backend=backend, workers=workers
    )
    threaded = _serve_all(
        requests, mac_threads=3, backend=backend, workers=workers
    )
    for (spec, grid, steps), a, b in zip(requests, serial, threaded):
        assert a.dtype == b.dtype
        assert a.tobytes() == b.tobytes(), (spec.name, grid.bc, steps)


def test_serving_fused_temporal_mode_thread_invariant():
    requests = _serving_requests(seed=4)
    serial = _serve_all(requests, mac_threads=1, temporal_mode="fused")
    threaded = _serve_all(requests, mac_threads=3, temporal_mode="fused")
    for a, b in zip(serial, threaded):
        assert a.tobytes() == b.tobytes()


@pytest.mark.parametrize("workers", [0, 2], ids=["sync", "thread"])
def test_service_close_leaves_no_mac_threads(workers):
    baseline = live_mac_threads()
    rng = np.random.default_rng(2)
    svc = StencilService(
        workers=workers, mac_threads=3, mac_col_block=SMALL_BLOCK
    )
    svc.run(named_stencil("heat2d"), Grid.random((16, 16), rng))
    assert live_mac_threads() > baseline  # the MAC actually went parallel
    svc.close()
    assert live_mac_threads() == baseline
    svc.close()  # idempotent


def test_service_resolves_and_reports_mac_threads(monkeypatch):
    rng = np.random.default_rng(6)
    # explicit count: reported verbatim and exported as a gauge
    with StencilService(workers=1, mac_threads=2) as svc:
        svc.run(named_stencil("heat2d"), Grid.random((12, 12), rng))
        stats = svc.stats()
    assert stats.mac_threads == 2
    gauges = {
        s.name: s.value
        for s in stats.metrics
        if s.name == "repro_serve_mac_threads"
    }
    assert gauges["repro_serve_mac_threads"] == 2.0
    # env override reaches the sync path's adaptive resolution
    monkeypatch.setenv(MAC_THREADS_ENV, "4")
    with StencilService(workers=0) as svc:
        assert svc.stats().mac_threads == 4


def test_traced_service_emits_gemm_spans_per_block():
    """With tracing on and the threaded path engaged, per-block
    ``mac.gemm`` spans surface in the stage totals — including spans
    recorded on pool helper threads."""
    rng = np.random.default_rng(8)
    with StencilService(
        workers=1,
        trace=True,
        mac_threads=3,
        mac_col_block=SMALL_BLOCK,
    ) as svc:
        for _ in range(3):
            svc.run(named_stencil("heat2d"), Grid.random((24, 24), rng))
        stats = svc.stats()
    gemm = stats.stages.get("mac.gemm")
    assert gemm is not None
    # a 24x24 sweep spans several column blocks under an 8-wide plan, and
    # each block emits one span — strictly more spans than batches
    assert gemm["count"] > stats.telemetry.batches
    assert gemm["total_s"] >= 0.0
