"""Tests for the extension modules: autotuning, sensitivity, precision
study, CLI, and the dense lanewise MMA path."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.autotune import autotune_tile_plan, candidate_plans
from repro.analysis.precision import (
    iterated_error,
    sweep_single_sweep_error,
    format_precision,
)
from repro.analysis.sensitivity import (
    format_sweep,
    sweep_bandwidth,
    sweep_sptc_ratio,
)
from repro.gpu.device import A100_80GB_PCIE
from repro.sptc import (
    distribute_a_dense,
    distribute_acc,
    distribute_b,
    collect_acc,
    mma_dense_lanewise,
    MmaPrecision,
)


class TestAutotune:
    def test_candidates_nonempty(self):
        plans = candidate_plans(2, (4096, 4096), A100_80GB_PCIE)
        assert len(plans) > 10

    def test_large_problem_prefers_large_tiles(self):
        result = autotune_tile_plan(2, (10240, 10240))
        assert result.best.block[0] * result.best.block[1] >= 32 * 32
        assert result.evaluated > 0
        assert len(result.ranking) <= 5

    def test_small_problem_prefers_smaller_tiles(self):
        big = autotune_tile_plan(2, (10240, 10240)).best
        small = autotune_tile_plan(2, (256, 256)).best
        assert (
            small.block[0] * small.block[1] <= big.block[0] * big.block[1]
        )

    def test_default_rule_near_optimal_at_paper_size(self):
        """SPIDER's predefined 64x64 rule is within a few percent of the
        model-optimal plan at paper sizes (within ~30%) (why no tuning is needed)."""
        from repro.core.autotune import _score
        from repro.core.tiling import make_tile_plan

        result = autotune_tile_plan(2, (10240, 10240))
        default = make_tile_plan(2, (10240, 10240))
        assert _score(default, A100_80GB_PCIE) >= 0.70 * result.score

    def test_ranking_sorted(self):
        result = autotune_tile_plan(1, (2048, 2048))
        scores = [s for _, s in result.ranking]
        assert scores == sorted(scores, reverse=True)

    def test_paper_size_ranking_regression(self):
        """Pin the paper-size ranking of the fixed mma-utilization term.

        ``_score`` no longer carries an unused K-chunking factor (it
        cancels inside ``mma_issues_per_warp_tile``, see the comment
        there); this pins the ranking that cancellation implies: large
        8-warp tiles win at paper sizes for every paper radius, and the
        predefined 64×64 rule stays within a few percent of optimal —
        the §4.2 claim that SPIDER needs no empirical search.
        """
        from repro.core.autotune import _score
        from repro.core.tiling import make_tile_plan

        for r in (1, 2, 3):
            result = autotune_tile_plan(r, (10240, 10240))
            assert result.best.block in ((64, 128), (128, 64))
            assert result.best.block[0] * result.best.block[1] == 64 * 128
            default = make_tile_plan(r, (10240, 10240))
            assert _score(default, A100_80GB_PCIE) >= 0.75 * result.score
            # the winner's absolute score band, pinned across radii
            assert 0.18 <= result.score <= 0.21


class TestSensitivity:
    @pytest.fixture(scope="class")
    def bw(self):
        return sweep_bandwidth(scales=(0.5, 1.0, 1.5))

    def test_baseline_point_matches_fig10(self, bw):
        point = [p for p in bw if p.scale == 1.0][0]
        assert point.spider_wins_everywhere
        assert point.avg_speedup["cuDNN"] == pytest.approx(6.09, abs=0.3)

    def test_scarcer_bandwidth_widens_margin(self, bw):
        margins = {p.scale: p.min_margin for p in bw}
        assert margins[0.5] >= margins[1.5]

    def test_sptc_ratio_monotone(self):
        pts = sweep_sptc_ratio(ratios=(1.0, 1.5, 2.0))
        speeds = [p.avg_speedup["TCStencil"] for p in pts]
        assert speeds[0] <= speeds[1] <= speeds[2]

    def test_format(self, bw):
        text = format_sweep(bw)
        assert "min margin" in text and "x0.5" in text


class TestPrecisionStudy:
    def test_single_sweep_error_small(self):
        samples = sweep_single_sweep_error(radii=(1, 2), magnitudes=(1.0,), shape=(24, 32))
        for s in samples:
            assert s.rel_l2 < 5e-3  # fp16 storage error regime

    def test_magnitude_independence_until_overflow(self):
        samples = sweep_single_sweep_error(
            radii=(1,), magnitudes=(1.0, 100.0), shape=(24, 24)
        )
        a, b = samples[0].rel_l2, samples[1].rel_l2
        assert b < 10 * a  # relative error roughly magnitude-independent

    def test_iterated_error_bounded(self):
        errs = iterated_error(steps=10, shape=(24, 24))
        assert len(errs) == 10
        assert errs[-1] < 0.05  # contractive smoother keeps error tame

    def test_format(self):
        text = format_precision(sweep_single_sweep_error(radii=(1,), magnitudes=(1.0,)))
        assert "rel L2" in text


class TestDenseLanewiseMma:
    def test_matches_matmul(self, rng):
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 8))
        d_regs = mma_dense_lanewise(
            a, distribute_b(b), precision=MmaPrecision.EXACT
        )
        assert np.allclose(collect_acc(d_regs), a @ b)

    def test_accumulator(self, rng):
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 8))
        c = rng.standard_normal((16, 8))
        d_regs = mma_dense_lanewise(
            a, distribute_b(b), distribute_acc(c), precision=MmaPrecision.EXACT
        )
        assert np.allclose(collect_acc(d_regs), a @ b + c)

    def test_dense_a_layout_covers_tile(self):
        from repro.sptc import a_dense_fragment_coords

        seen = np.zeros((16, 16), dtype=int)
        for lane in range(32):
            for row, col in a_dense_fragment_coords(lane):
                seen[row, col] += 1
        assert (seen == 1).all()

    def test_distribute_a_dense_shape_check(self):
        with pytest.raises(ValueError):
            distribute_a_dense(np.zeros((16, 8)))

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            mma_dense_lanewise(np.zeros((8, 16)), np.zeros((32, 4)))


class TestCLI:
    def test_table2(self, capsys):
        assert cli_main(["table2"]) == 0
        assert "SPIDER" in capsys.readouterr().out

    def test_table3(self, capsys):
        assert cli_main(["table3", "--radius", "3"]) == 0
        assert "Row Swapping" in capsys.readouterr().out

    def test_fig11(self, capsys):
        assert cli_main(["fig11", "--shape", "Box-2D1R"]) == 0
        assert "10240" in capsys.readouterr().out

    def test_fig12(self, capsys):
        assert cli_main(["fig12"]) == 0
        assert "stage gains" in capsys.readouterr().out

    def test_verify_pass(self, capsys):
        assert cli_main(["verify", "--shape", "Star-2D2R", "--size", "24x32"]) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_verify_1d_default_size(self, capsys):
        assert cli_main(["verify", "--shape", "1D2R"]) == 0

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            cli_main(["nonsense"])
