"""Chaos differential suite for the self-healing serving layer.

The fault-injection harness (:mod:`repro.serve.faults`) makes failure a
*deterministic, replayable input*: every test here arms a seeded
:class:`FaultPlan`, runs a request stream through a supervised
:class:`StencilService`, and asserts the recovery machinery's contract —

* **zero failed requests**: supervision (worker respawn), idempotent batch
  retry, transport degradation and the inline fallback absorb every
  injected kill / slab corruption / transient failure;
* **bit-identity**: recovered results are byte-identical to a fault-free
  run, because a request is a pure function of (plan, grid) and a resumed
  solve of the checkpointed iterate replays the exact trajectory;
* **hygiene**: no leaked shm segments, no orphaned session threads, and
  explicit errors (never hangs) once budgets are truly spent.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.serve import (
    DeadlineExceeded,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
    ServiceClosedError,
    StencilService,
    WorkerCrashed,
    is_transient_failure,
)
from repro.serve.faults import REPRO_FAULTS_ENV
from repro.stencil import Grid, named_stencil


def _grids(n=12, shape=(16, 16), seed=0):
    rng = np.random.default_rng(seed)
    return [Grid(rng.standard_normal(shape)) for _ in range(n)]


def _reference(spec, grids):
    """Fault-free sync-path outputs — the byte-identity baseline."""
    with StencilService(workers=0) as svc:
        return [svc.submit(spec, g).result() for g in grids]


def _serve_chaos(spec, grids, *, faults, transport="shm", workers=1,
                 retry_policy=None, backend="process"):
    with StencilService(
        workers=workers,
        backend=backend,
        transport=transport,
        max_batch_size=4,
        max_wait_s=0.001,
        faults=faults,
        retry_policy=retry_policy,
    ) as svc:
        handles = [svc.submit(spec, g) for g in grids]
        svc.drain()
        outs = [h.result(timeout=120) for h in handles]
        stats = svc.stats()
    return outs, stats


# ----------------------------------------------------------------------
# the harness itself: validation, round-trip, determinism
# ----------------------------------------------------------------------


def test_fault_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(kind="explode", at_batch=1)  # unknown kind
    with pytest.raises(ValueError):
        FaultSpec(kind="kill_worker")  # neither trigger
    with pytest.raises(ValueError):
        FaultSpec(kind="kill_worker", at_batch=1, rate=0.5)  # both
    with pytest.raises(ValueError):
        FaultSpec(kind="kill_worker", rate=1.5)  # rate out of range


def test_fault_plan_round_trip(tmp_path):
    plan = FaultPlan(
        faults=(
            FaultSpec(kind="kill_worker", shard=0, at_batch=2),
            FaultSpec(kind="fail_batch", rate=0.25, count=None),
        ),
        seed=7,
    )
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    assert FaultPlan.from_json(plan.to_json()) == plan
    assert FaultPlan.coerce(plan.to_json()) == plan
    path = tmp_path / "plan.json"
    path.write_text(plan.to_json())
    assert FaultPlan.coerce(str(path)) == plan
    assert FaultPlan.coerce(None) is None
    assert not FaultPlan(faults=())
    assert plan


def test_fault_plan_env_arming(monkeypatch):
    plan = FaultPlan(faults=(FaultSpec(kind="fail_batch", at_batch=1),))
    monkeypatch.delenv(REPRO_FAULTS_ENV, raising=False)
    assert FaultPlan.from_env() is None
    monkeypatch.setenv(REPRO_FAULTS_ENV, plan.to_json())
    assert FaultPlan.from_env() == plan
    # a service with no explicit plan arms the env plan
    svc = StencilService(workers=0)
    try:
        assert svc.fault_plan == plan
    finally:
        svc.close()


def test_injector_is_deterministic():
    plan = FaultPlan(
        faults=(FaultSpec(kind="fail_batch", rate=0.3, count=None),),
        seed=13,
    )

    def schedule():
        inj = FaultInjector(plan)
        return [inj.should_fire("fail_batch", shard=0) for _ in range(64)]

    first = schedule()
    assert first == schedule()  # same seed -> same schedule
    assert any(first) and not all(first)
    other = FaultInjector(
        FaultPlan(faults=plan.faults, seed=14)
    )
    assert first != [
        other.should_fire("fail_batch", shard=0) for _ in range(64)
    ]


def test_injector_at_batch_and_count():
    plan = FaultPlan(
        faults=(FaultSpec(kind="kill_worker", at_batch=3, count=2),)
    )
    inj = FaultInjector(plan)
    fires = [inj.should_fire("kill_worker", shard=0) for _ in range(8)]
    assert fires == [False, False, True, True, False, False, False, False]
    assert inj.fired["kill_worker"] == 2
    assert inj.fired_total == 2
    # shard filters apply: a spec pinned to shard 1 never fires on 0
    pinned = FaultInjector(
        FaultPlan(faults=(FaultSpec(kind="kill_worker", shard=1, at_batch=1),))
    )
    assert not any(
        pinned.should_fire("kill_worker", shard=0) for _ in range(4)
    )
    assert pinned.should_fire("kill_worker", shard=1)


def test_is_transient_failure_classification():
    assert is_transient_failure(WorkerCrashed("x"))
    assert is_transient_failure(InjectedFault("x"))
    assert not is_transient_failure(ValueError("x"))
    assert not is_transient_failure(DeadlineExceeded("x"))


# ----------------------------------------------------------------------
# the acceptance differential: SIGKILL + slab corruption, both transports
# ----------------------------------------------------------------------


@pytest.mark.parametrize("transport", ["shm", "queue"])
def test_worker_kill_mid_stream_is_absorbed_bit_identically(transport):
    """A shard worker SIGKILLed mid-stream: supervision respawns it (or
    the inline rung absorbs the interim), every request is served, and
    the results are byte-identical to a fault-free run."""
    spec = named_stencil("heat2d")
    grids = _grids()
    ref = _reference(spec, grids)
    before = set(os.listdir("/dev/shm"))
    plan = FaultPlan(faults=(FaultSpec(kind="kill_worker", shard=0, at_batch=2),))
    outs, stats = _serve_chaos(spec, grids, faults=plan, transport=transport)
    for a, b in zip(ref, outs):
        assert a.tobytes() == b.tobytes()
    t = stats.telemetry
    assert t.errors == 0
    assert t.faults_injected >= 1
    # the kill was absorbed by some recovery rung
    assert t.retries + t.inline_batches + t.worker_restarts >= 1
    assert set(os.listdir("/dev/shm")) - before == set()


def test_corrupt_slab_descriptor_is_absorbed_bit_identically():
    """A corrupted generation tag on a shipped slab descriptor surfaces
    as a worker-side SlabError; the batch retries and the stream still
    resolves byte-identically with zero failures."""
    spec = named_stencil("heat2d")
    grids = _grids()
    ref = _reference(spec, grids)
    plan = FaultPlan(faults=(FaultSpec(kind="corrupt_slab", shard=0, at_batch=1),))
    outs, stats = _serve_chaos(spec, grids, faults=plan, transport="shm")
    for a, b in zip(ref, outs):
        assert a.tobytes() == b.tobytes()
    t = stats.telemetry
    assert t.errors == 0
    assert t.faults_injected >= 1
    assert t.retries >= 1


def test_worker_respawn_serves_subsequent_traffic():
    """After the restart backoff the killed shard comes back as a fresh
    process (fresh slabs, replayed knobs) and serves new submits."""
    spec = named_stencil("heat2d")
    grids = _grids()
    ref = _reference(spec, grids)
    plan = FaultPlan(faults=(FaultSpec(kind="kill_worker", shard=0, at_batch=2),))
    with StencilService(
        workers=1, backend="process", max_batch_size=4, max_wait_s=0.001,
        faults=plan,
    ) as svc:
        for g in grids:
            svc.submit(spec, g)
        svc.drain()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if svc.stats().telemetry.worker_restarts >= 1:
                break
            time.sleep(0.05)
        assert svc.stats().telemetry.worker_restarts >= 1
        late = [svc.submit(spec, g) for g in grids]
        svc.drain()
        outs = [h.result(timeout=120) for h in late]
        stats = svc.stats()
    for a, b in zip(ref, outs):
        assert a.tobytes() == b.tobytes()
    assert stats.telemetry.errors == 0


def test_rate_chaos_thread_backend_zero_failures():
    """Seeded fail_batch chaos on the thread backend: the retry rung
    alone keeps the stream loss-free and bit-identical."""
    spec = named_stencil("heat2d")
    grids = _grids(n=16)
    ref = _reference(spec, grids)
    plan = FaultPlan(
        faults=(FaultSpec(kind="fail_batch", rate=0.3, count=None),),
        seed=5,
    )
    outs, stats = _serve_chaos(
        spec, grids, faults=plan, backend="thread", workers=2
    )
    for a, b in zip(ref, outs):
        assert a.tobytes() == b.tobytes()
    t = stats.telemetry
    assert t.errors == 0
    assert t.faults_injected >= 1
    assert t.retries >= 1


# ----------------------------------------------------------------------
# degradation ladder: transport downgrade, budget exhaustion, inline rung
# ----------------------------------------------------------------------


def test_repeated_slab_errors_degrade_transport():
    """With the degradation threshold at 1, a single injected slab
    corruption flips the shard's task direction to queue transport —
    subsequent batches ship pickled and the stream stays loss-free."""
    spec = named_stencil("heat2d")
    grids = _grids()
    ref = _reference(spec, grids)
    plan = FaultPlan(
        faults=(FaultSpec(kind="corrupt_slab", shard=0, at_batch=1),)
    )
    outs, stats = _serve_chaos(
        spec, grids, faults=plan, transport="shm",
        retry_policy=RetryPolicy(slab_error_threshold=1),
    )
    for a, b in zip(ref, outs):
        assert a.tobytes() == b.tobytes()
    t = stats.telemetry
    assert t.errors == 0
    assert t.slab_degrades >= 1


def test_exhausted_restart_budget_rehashes_onto_survivors():
    """restart_budget=0: the killed shard tombstones immediately and its
    spec-affinity keys rehash deterministically onto the survivor."""
    spec = named_stencil("heat2d")
    grids = _grids()
    ref = _reference(spec, grids)
    plan = FaultPlan(faults=(FaultSpec(kind="kill_worker", shard=0, at_batch=1),))
    outs, stats = _serve_chaos(
        spec, grids, faults=plan, workers=2,
        retry_policy=RetryPolicy(restart_budget=0),
    )
    for a, b in zip(ref, outs):
        assert a.tobytes() == b.tobytes()
    t = stats.telemetry
    assert t.errors == 0
    assert t.worker_restarts == 0


def test_all_shards_dead_falls_back_inline():
    """Single shard, no restarts left: the in-parent inline executor is
    the terminal rung — still loss-free, still byte-identical."""
    spec = named_stencil("heat2d")
    grids = _grids()
    ref = _reference(spec, grids)
    plan = FaultPlan(faults=(FaultSpec(kind="kill_worker", shard=0, at_batch=1),))
    outs, stats = _serve_chaos(
        spec, grids, faults=plan, workers=1,
        retry_policy=RetryPolicy(restart_budget=0),
    )
    for a, b in zip(ref, outs):
        assert a.tobytes() == b.tobytes()
    t = stats.telemetry
    assert t.errors == 0
    assert t.inline_batches >= 1


def test_recovery_disabled_fails_fast():
    """RetryPolicy.disabled() restores the pre-self-healing contract:
    a killed worker fails its in-flight requests with WorkerCrashed."""
    spec = named_stencil("heat2d")
    grids = _grids(n=6)
    plan = FaultPlan(faults=(FaultSpec(kind="kill_worker", shard=0, at_batch=1),))
    with StencilService(
        workers=1, backend="process", max_batch_size=4, max_wait_s=0.001,
        faults=plan, retry_policy=RetryPolicy.disabled(),
    ) as svc:
        handles = [svc.submit(spec, g) for g in grids]
        svc.drain()
        stats = svc.stats()
    failed = [h for h in handles if h.failed]
    assert failed, "fail-fast policy must surface the crash"
    with pytest.raises(WorkerCrashed, match="died unexpectedly"):
        failed[0].result(timeout=0)
    assert stats.telemetry.errors == len(failed)


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------


def test_deadline_expires_at_coalescing():
    spec = named_stencil("heat2d")
    g = _grids(n=1)[0]
    with StencilService(
        workers=1, backend="thread", max_wait_s=5.0, max_batch_size=64
    ) as svc:
        h = svc.submit(spec, g, timeout=0.05)
        with pytest.raises(DeadlineExceeded):
            h.result(timeout=60)
        stats = svc.stats()
    assert stats.telemetry.deadline_expired >= 1


def test_default_deadline_applies_service_wide():
    spec = named_stencil("heat2d")
    g = _grids(n=1)[0]
    with StencilService(
        workers=1, backend="thread", max_wait_s=5.0, max_batch_size=64,
        default_deadline_s=0.05,
    ) as svc:
        h = svc.submit(spec, g)
        with pytest.raises(DeadlineExceeded):
            h.result(timeout=60)


def test_deadline_validation_and_unexpired_requests_serve():
    spec = named_stencil("heat2d")
    g = _grids(n=1)[0]
    with StencilService(workers=1, backend="thread", max_wait_s=0.001) as svc:
        with pytest.raises(ValueError):
            svc.submit(spec, g, timeout=0.0)
        out = svc.submit(spec, g, timeout=60.0).result(timeout=60)
    assert out.shape == g.shape
    with pytest.raises(ValueError):
        StencilService(workers=0, default_deadline_s=-1.0)


def test_sync_path_enforces_deadline():
    spec = named_stencil("heat2d")
    g = _grids(n=1)[0]
    svc = StencilService(workers=0)
    try:
        req = svc.submit(spec, g, timeout=30.0)
        assert not req.failed  # plenty of budget: served inline
        # an already-expired deadline is rejected before execution
        expired = svc.submit(spec, g, timeout=1e-9)
        with pytest.raises(DeadlineExceeded):
            expired.result(timeout=0)
    finally:
        svc.close()


def test_solve_session_deadline():
    spec = named_stencil("heat2d")
    rng = np.random.default_rng(2)
    rhs = rng.standard_normal((17, 17))
    with StencilService(
        workers=1, backend="thread", max_wait_s=5.0, max_batch_size=64
    ) as svc:
        handle = svc.submit_solve(
            spec, rhs, tol=1e-12, max_iters=50, timeout=0.05
        )
        with pytest.raises(DeadlineExceeded):
            handle.result(timeout=120)


# ----------------------------------------------------------------------
# sync-path retry
# ----------------------------------------------------------------------


def test_sync_backend_retries_injected_faults():
    spec = named_stencil("heat2d")
    g = _grids(n=1)[0]
    ref = _reference(spec, [g])[0]
    plan = FaultPlan(faults=(FaultSpec(kind="fail_batch", at_batch=1, count=2),))
    with StencilService(workers=0, faults=plan) as svc:
        out = svc.submit(spec, g).result()
        stats = svc.stats()
    assert out.tobytes() == ref.tobytes()
    t = stats.telemetry
    assert t.retries == 2 and t.errors == 0 and t.faults_injected == 2


def test_sync_backend_exhausted_budget_surfaces_fault():
    spec = named_stencil("heat2d")
    g = _grids(n=1)[0]
    # more consecutive faults than the budget can absorb
    plan = FaultPlan(faults=(FaultSpec(kind="fail_batch", at_batch=1, count=10),))
    with StencilService(
        workers=0, faults=plan, retry_policy=RetryPolicy(retry_budget=1)
    ) as svc:
        req = svc.submit(spec, g)
        with pytest.raises(InjectedFault):
            req.result(timeout=0)


# ----------------------------------------------------------------------
# solver-session self-healing
# ----------------------------------------------------------------------


def test_solve_session_resumes_bit_identically_after_transient_failure():
    """Request retries off: a mid-solve transient failure surfaces to the
    session driver, which resumes from the checkpointed iterate —
    stitched iterations, residual history and solution are byte-identical
    to the uninterrupted solve."""
    spec = named_stencil("heat2d")
    rng = np.random.default_rng(3)
    rhs = rng.standard_normal((17, 17))
    with StencilService(workers=0) as svc:
        want = svc.submit_solve(
            spec, rhs, tol=1e-10, max_iters=8, record_history=True
        ).result(120)
    plan = FaultPlan(faults=(FaultSpec(kind="fail_batch", at_batch=6),))
    with StencilService(
        workers=1, backend="thread", max_wait_s=0.001, faults=plan,
        retry_policy=RetryPolicy(retry_budget=0),
    ) as svc:
        got = svc.submit_solve(
            spec, rhs, tol=1e-10, max_iters=8, record_history=True
        ).result(240)
        stats = svc.stats()
    assert got.solution.tobytes() == want.solution.tobytes()
    assert got.iterations == want.iterations
    assert got.residual_history == want.residual_history
    assert got.converged == want.converged
    assert stats.telemetry.solve_resumes >= 1


def test_solve_session_resumes_after_worker_kill_with_budgets_spent():
    """A mid-solve SIGKILL with every sub-session rung disabled (no
    request retries, no inline fallback) still yields the byte-identical
    solve: the crash surfaces to the session, which resumes once the
    supervisor has respawned the shard."""
    spec = named_stencil("heat2d")
    rng = np.random.default_rng(7)
    rhs = rng.standard_normal((17, 17))
    with StencilService(workers=0) as svc:
        want = svc.submit_solve(spec, rhs, tol=1e-10, max_iters=8).result(120)
    plan = FaultPlan(faults=(FaultSpec(kind="kill_worker", shard=0, at_batch=6),))
    with StencilService(
        workers=1, backend="process", max_wait_s=0.001, faults=plan,
        retry_policy=RetryPolicy(retry_budget=0, inline_fallback=False),
    ) as svc:
        got = svc.submit_solve(spec, rhs, tol=1e-10, max_iters=8).result(240)
        stats = svc.stats()
    assert got.solution.tobytes() == want.solution.tobytes()
    assert got.iterations == want.iterations
    assert stats.telemetry.worker_restarts >= 1


def test_solve_retries_exhausted_fails_explicitly():
    spec = named_stencil("heat2d")
    rng = np.random.default_rng(4)
    rhs = rng.standard_normal((13, 13))
    # every batch dies and nothing may recover below the session
    plan = FaultPlan(
        faults=(FaultSpec(kind="kill_worker", rate=1.0, count=None),)
    )
    with StencilService(
        workers=1, backend="process", max_wait_s=0.001, faults=plan,
        retry_policy=RetryPolicy(
            retry_budget=0, restart_budget=1, inline_fallback=False,
            solve_retries=1,
        ),
    ) as svc:
        handle = svc.submit_solve(spec, rhs, tol=1e-10, max_iters=6)
        with pytest.raises((WorkerCrashed, InjectedFault)):
            handle.result(timeout=240)
        stats = svc.stats()
    assert stats.telemetry.solve_failures == 1


def test_no_orphaned_session_threads_after_mid_solve_kill():
    """Every spider-solve-* session thread terminates after a mid-solve
    worker kill — whether the session resumed or failed (satellite for
    the dead-shard session-cleanup contract)."""
    spec = named_stencil("heat2d")
    rng = np.random.default_rng(5)
    plan = FaultPlan(faults=(FaultSpec(kind="kill_worker", shard=0, at_batch=3),))
    with StencilService(
        workers=1, backend="process", max_wait_s=0.001, faults=plan
    ) as svc:
        handles = [
            svc.submit_solve(
                spec, rng.standard_normal((13, 13)), tol=1e-10, max_iters=5
            )
            for _ in range(3)
        ]
        svc.drain()
        assert all(h.done() for h in handles)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        orphans = [
            th.name
            for th in threading.enumerate()
            if th.name.startswith("spider-solve-")
        ]
        if not orphans:
            break
        time.sleep(0.05)
    assert not orphans, f"session threads outlived their solves: {orphans}"


def test_drain_races_concurrent_failing_solves():
    """drain() must return (not hang, not crash) while concurrent solve
    sessions are failing under fail-fast policy — the satellite race
    between session bookkeeping and the drain sweep."""
    spec = named_stencil("heat2d")
    rng = np.random.default_rng(6)
    plan = FaultPlan(
        faults=(FaultSpec(kind="kill_worker", rate=1.0, count=None),)
    )
    with StencilService(
        workers=1, backend="process", max_wait_s=0.001, faults=plan,
        retry_policy=RetryPolicy.disabled(),
    ) as svc:
        handles = []
        errs = []

        def burst():
            for _ in range(4):
                try:
                    handles.append(
                        svc.submit_solve(
                            spec,
                            rng.standard_normal((13, 13)),
                            tol=1e-10,
                            max_iters=4,
                        )
                    )
                except RuntimeError as exc:  # pool may be tombstoned
                    errs.append(exc)
        threads = [threading.Thread(target=burst) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        svc.drain(timeout=240)
        assert all(h.done() for h in handles)
        # with recovery disabled every accepted session fails explicitly
        assert all(h.exception(timeout=0) is not None for h in handles)


# ----------------------------------------------------------------------
# closed-service contract + observability
# ----------------------------------------------------------------------


def test_submit_on_closed_service_raises_service_closed():
    spec = named_stencil("heat2d")
    g = _grids(n=1)[0]
    svc = StencilService(workers=0)
    svc.close()
    with pytest.raises(ServiceClosedError):
        svc.submit(spec, g)
    with pytest.raises(ServiceClosedError):
        svc.submit_solve(spec, np.zeros((8, 8)) + 1.0)
    # the subclass keeps the legacy RuntimeError contract
    assert issubclass(ServiceClosedError, RuntimeError)
    with pytest.raises(RuntimeError, match="closed StencilService"):
        svc.submit(spec, g)


def test_recovery_counters_reach_report_and_prometheus():
    spec = named_stencil("heat2d")
    grids = _grids()
    plan = FaultPlan(faults=(FaultSpec(kind="kill_worker", shard=0, at_batch=2),))
    with StencilService(
        workers=1, backend="process", max_batch_size=4, max_wait_s=0.001,
        faults=plan,
    ) as svc:
        for g in grids:
            svc.submit(spec, g)
        svc.drain()
        report = svc.format_report()
        stats = svc.stats()
    assert stats.telemetry.faults_injected >= 1
    assert "faults injected" in report
    text = stats.to_prometheus()
    for metric in (
        "repro_serve_retries_total",
        "repro_serve_worker_restarts_total",
        "repro_serve_faults_injected_total",
    ):
        assert metric in text, f"missing {metric}"
