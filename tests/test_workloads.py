"""Tests for the paper benchmark workload generators."""

import pytest

from repro.stencil import (
    PAPER_1D_SIZE,
    PAPER_2D_SIZE,
    PAPER_SHAPE_IDS,
    make_workload,
    paper_benchmark_suite,
    paper_size_sweep,
)
from repro.stencil.spec import ShapeType


class TestSuite:
    def test_eight_shapes(self):
        suite = paper_benchmark_suite()
        assert [wl.spec.benchmark_id for wl in suite] == PAPER_SHAPE_IDS

    def test_paper_sizes(self):
        for wl in paper_benchmark_suite():
            if wl.spec.dims == 1:
                assert wl.grid_shape == PAPER_1D_SIZE
            else:
                assert wl.grid_shape == PAPER_2D_SIZE

    def test_kernels_symmetric(self):
        # suite kernels are symmetric so every baseline (incl. LoRA) runs
        for wl in paper_benchmark_suite():
            assert wl.spec.is_symmetric

    def test_star_shapes_masked(self):
        for wl in paper_benchmark_suite():
            if "Star" in wl.spec.benchmark_id:
                assert wl.spec.shape is ShapeType.STAR


class TestMakeWorkload:
    def test_custom_size(self):
        wl = make_workload("Box-2D2R", (512, 512))
        assert wl.grid_shape == (512, 512)
        assert wl.spec.radius == 2

    def test_1d_parse(self):
        wl = make_workload("1D2R")
        assert wl.spec.dims == 1 and wl.spec.radius == 2

    def test_label(self):
        assert make_workload("Box-2D1R", (64, 64)).label == "Box-2D1R@64x64"

    def test_num_points(self):
        assert make_workload("Box-2D1R", (64, 32)).num_points == 2048

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            make_workload("Box-2D1R", (100,))

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError):
            make_workload("Hex-2D1R")

    def test_make_grid(self, rng):
        g = make_workload("Box-2D1R", (16, 16)).make_grid(rng)
        assert g.shape == (16, 16)

    def test_seed_reproducible(self):
        a = make_workload("Box-2D3R", seed=3).spec.weights
        b = make_workload("Box-2D3R", seed=3).spec.weights
        assert (a == b).all()


class TestSizeSweep:
    def test_2d_sweep_square(self):
        sweep = paper_size_sweep("Box-2D2R")
        assert all(wl.grid_shape[0] == wl.grid_shape[1] for wl in sweep)
        sizes = [wl.grid_shape[0] for wl in sweep]
        assert sizes == sorted(sizes)
        assert sizes[0] == 512 and sizes[-1] == 10240

    def test_1d_sweep(self):
        sweep = paper_size_sweep("1D1R")
        assert all(len(wl.grid_shape) == 1 for wl in sweep)
        assert sweep[0].grid_shape[0] == 1024 * 256

    def test_same_spec_across_sweep(self):
        sweep = paper_size_sweep("Box-2D1R")
        assert all(wl.spec is sweep[0].spec for wl in sweep)
