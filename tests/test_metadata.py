"""Tests for metadata encoding and Figure-9 packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sptc.metadata import (
    MetadataRegisterFile,
    decode_positions,
    decode_row_word,
    encode_positions,
    encode_row_word,
    pack_metadata_words,
    unpack_metadata_words,
)


class TestRowWords:
    def test_paper_example(self):
        # §3.1.2: values E,G at positions 0 and 2 encode as 00 then 10,
        # i.e. LSB-first slot packing: word = 0b10_00 = 8
        word = encode_row_word(np.array([0, 2]))
        assert word == 0b1000
        assert decode_row_word(word, 2).tolist() == [0, 2]

    def test_paper_placeholder_example(self):
        # 0G00 -> G at position 1, placeholder at 2: metadata 01 10
        word = encode_row_word(np.array([1, 2]))
        assert word == 0b1001
        assert decode_row_word(word, 2).tolist() == [1, 2]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            encode_row_word(np.array([4]))

    def test_16_bit_row(self):
        # a full kernel-matrix row (8 slots) fits one 16-bit word
        pos = np.array([0, 1, 2, 3, 0, 2, 1, 3])
        word = encode_row_word(pos)
        assert word < (1 << 16)
        assert decode_row_word(word, 8).tolist() == pos.tolist()


class TestMatrixEncoding:
    @given(
        m=st.integers(1, 8),
        half=st.integers(1, 10),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_encode_decode_roundtrip(self, m, half, seed):
        rng = np.random.default_rng(seed)
        pos = rng.integers(0, 4, size=(m, half)).astype(np.uint8)
        words = encode_positions(pos)
        assert np.array_equal(decode_positions(words, half), pos)

    def test_rejects_bad_positions(self):
        with pytest.raises(ValueError):
            encode_positions(np.array([[5]]))


class TestWordPacking:
    @given(
        m=st.integers(1, 16),
        half=st.sampled_from([2, 4, 8]),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_pack_unpack_roundtrip(self, m, half, seed):
        rng = np.random.default_rng(seed)
        pos = rng.integers(0, 4, size=(m, half)).astype(np.uint8)
        words, payload = pack_metadata_words(pos)
        assert payload == half * 2
        assert np.array_equal(unpack_metadata_words(words, m, half), pos)

    def test_two_rows_per_register(self):
        # 8-slot rows (16 bits) pack two per 32-bit word — Figure 9
        pos = np.zeros((16, 8), dtype=np.uint8)
        words, _ = pack_metadata_words(pos)
        assert len(words) == 8


class TestRegisterFile:
    def test_naive_vs_packed(self):
        rf = MetadataRegisterFile(num_mma=4, group_size=2)
        assert rf.registers_per_thread_naive == 4
        assert rf.registers_per_thread_packed == 2
        assert rf.register_savings == 2

    def test_selector_cycles(self):
        rf = MetadataRegisterFile(num_mma=4, group_size=2)
        assert [rf.selector_for(i) for i in range(4)] == [0, 1, 0, 1]

    def test_group_size_limit(self):
        with pytest.raises(ValueError):
            MetadataRegisterFile(num_mma=8, group_size=5)

    def test_selector_range_check(self):
        rf = MetadataRegisterFile(num_mma=2)
        with pytest.raises(ValueError):
            rf.selector_for(2)

    def test_no_packing_identity(self):
        rf = MetadataRegisterFile(num_mma=3, group_size=1)
        assert rf.registers_per_thread_packed == 3
        assert rf.register_savings == 0
