"""Public-API hygiene: exports resolve, everything public is documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.stencil",
    "repro.sptc",
    "repro.gpu",
    "repro.core",
    "repro.baselines",
    "repro.analysis",
]

MODULES = [
    "repro.cli",
    "repro.stencil.spec",
    "repro.stencil.grid",
    "repro.stencil.reference",
    "repro.stencil.workloads",
    "repro.stencil.solvers",
    "repro.stencil.distributed",
    "repro.sptc.formats",
    "repro.sptc.metadata",
    "repro.sptc.fragments",
    "repro.sptc.mma",
    "repro.sptc.mma_sp",
    "repro.sptc.warp",
    "repro.sptc.instruction",
    "repro.sptc.spmm_lib",
    "repro.gpu.device",
    "repro.gpu.memory",
    "repro.gpu.occupancy",
    "repro.gpu.timing",
    "repro.gpu.jit",
    "repro.gpu.kernel",
    "repro.gpu.ptx",
    "repro.core.kernel_matrix",
    "repro.core.swapping",
    "repro.core.encoding",
    "repro.core.row_swap",
    "repro.core.tiling",
    "repro.core.packing",
    "repro.core.executor",
    "repro.core.pipeline",
    "repro.core.cost",
    "repro.core.temporal",
    "repro.core.autotune",
    "repro.baselines.base",
    "repro.analysis.costs",
    "repro.analysis.redundancy",
    "repro.analysis.perfmodel",
    "repro.analysis.tables",
    "repro.analysis.figures",
    "repro.analysis.sensitivity",
    "repro.analysis.precision",
]


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_module_imports_and_documented(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and mod.__doc__.strip(), f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    exported = getattr(mod, "__all__", [])
    assert exported, f"{name} must define __all__"
    for sym in exported:
        assert hasattr(mod, sym), f"{name}.__all__ lists missing {sym!r}"


@pytest.mark.parametrize("name", MODULES)
def test_public_callables_documented(name):
    """Every public function/class defined in a module carries a docstring."""
    mod = importlib.import_module(name)
    missing = []
    for attr_name, obj in vars(mod).items():
        if attr_name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != name:
            continue  # re-exports are documented at their origin
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(attr_name)
    assert not missing, f"{name}: undocumented public items {missing}"


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)
