"""Tests for hierarchical tiling (§3.3.1) and data packing (§3.3.2)."""

import numpy as np
import pytest

from repro.core.packing import (
    kernel_load_audit,
    pack_kernel_tiles,
    plan_metadata_packing,
    unpack_kernel_tiles,
)
from repro.core.tiling import TilePlan, make_tile_plan
from repro.gpu.device import A100_80GB_PCIE


class TestTilePlan:
    def test_default_2d_plan(self):
        plan = make_tile_plan(2, (10240, 10240), A100_80GB_PCIE)
        assert plan.block[0] % plan.warp[0] == 0
        assert plan.block[1] % plan.warp[1] == 0
        assert plan.threads_per_block % 32 == 0
        assert plan.num_blocks == (10240 // plan.block[0]) * (10240 // plan.block[1])

    def test_halo_shape(self):
        plan = TilePlan(radius=3, grid_shape=(128, 128), block=(64, 64), warp=(16, 32))
        assert plan.halo_tile_shape == (70, 70)
        assert plan.shared_mem_bytes == 70 * 70 * 2

    def test_1d_plan(self):
        plan = make_tile_plan(1, (10240000,), A100_80GB_PCIE)
        assert plan.num_blocks >= 1

    def test_warp_divides_block_enforced(self):
        with pytest.raises(ValueError):
            TilePlan(radius=1, grid_shape=(64, 64), block=(64, 64), warp=(48, 32))

    def test_mma_issue_count_positive(self):
        plan = TilePlan(radius=2, grid_shape=(64, 64), block=(64, 64), warp=(16, 32))
        assert plan.mma_issues_per_warp_tile >= 1

    def test_kernel_matrix_bypasses_smem(self):
        # §3.3.1: the kernel matrix lives in registers — shared memory holds
        # only the input tile, whose footprint the plan reports
        plan = TilePlan(radius=1, grid_shape=(64, 64), block=(32, 32), warp=(16, 16))
        assert plan.shared_mem_bytes == 34 * 34 * 2

    def test_3d_grid_rejected(self):
        with pytest.raises(ValueError):
            make_tile_plan(1, (8, 8, 8))

    def test_launch_descriptor(self):
        plan = make_tile_plan(1, (1024, 1024))
        kl = plan.launch("spider")
        assert kl.grid == plan.num_blocks
        assert kl.block.threads == plan.threads_per_block


class TestKernelPacking:
    def test_roundtrip(self, rng):
        tiles = [rng.standard_normal((16, 8)) for _ in range(3)]
        packed = pack_kernel_tiles(tiles)
        back = unpack_kernel_tiles(packed)
        for t, b in zip(tiles, back):
            assert np.array_equal(t, b)

    def test_per_lane_contiguous(self, rng):
        # Figure 8: each thread's 4 elements are adjacent in the buffer
        tiles = [rng.standard_normal((16, 8))]
        packed = pack_kernel_tiles(tiles)
        from repro.sptc import fragments as fr

        regs = fr.distribute_a(tiles[0])
        for lane in range(32):
            seg = packed.buffer[lane * 4 : (lane + 1) * 4]
            assert np.array_equal(seg, regs[lane])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pack_kernel_tiles([])

    def test_wrong_tile_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            pack_kernel_tiles([rng.standard_normal((8, 8))])

    def test_packing_reduces_transactions(self):
        """The Figure-8 claim: packed layout needs (strictly) fewer global
        transactions than the naive row-major fragment gather."""
        for tiles in (1, 2, 4):
            unpacked, packed = kernel_load_audit(tiles)
            assert packed.transactions < unpacked.transactions
            assert packed.bytes_moved == unpacked.bytes_moved

    def test_audit_validation(self):
        with pytest.raises(ValueError):
            kernel_load_audit(0)


class TestMetadataPacking:
    def test_register_savings(self):
        plan = plan_metadata_packing(num_mma=4, group_size=2)
        assert plan.registers_per_thread_naive == 4
        assert plan.registers_per_thread_packed == 2

    def test_group_clamped_to_num_mma(self):
        plan = plan_metadata_packing(num_mma=1, group_size=4)
        assert plan.group_size == 1
