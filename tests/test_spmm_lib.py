"""Tests for the cuSPARSELt-style library layer — including the §2.4.2
argument that pruning cannot replace SPIDER's lossless transformation."""

import numpy as np
import pytest

from repro.core import apply_column_swap, build_kernel_matrix, choose_L
from repro.sptc import MmaPrecision
from repro.sptc.spmm_lib import SpmmHandle, prune_24, prune_error

from .test_formats import random_24_matrix


class TestPrune:
    def test_prune_enforces_pattern(self, rng):
        a = rng.standard_normal((8, 16))
        from repro.sptc import is_24_sparse

        assert is_24_sparse(prune_24(a))

    def test_prune_lossless_iff_already_24(self, rng):
        a = random_24_matrix(rng, 8, 16)
        assert prune_error(a) == 0.0
        dense = rng.standard_normal((8, 16))
        assert prune_error(dense) > 0.1

    def test_prune_keeps_largest(self):
        a = np.array([[1.0, -5.0, 2.0, 0.5]])
        p = prune_24(a)
        assert p.tolist() == [[0.0, -5.0, 2.0, 0.0]]

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            prune_24(np.zeros((2, 6)))


class TestSpiderVsPruning:
    def test_pruning_stencil_kernel_matrix_is_lossy(self, rng):
        """§2.4.2: the *unswapped* kernel matrix is not 2:4, so a prune-
        based library corrupts the stencil; the strided swap makes the same
        values 2:4 with zero loss."""
        row = rng.standard_normal(7)  # r = 3
        k = build_kernel_matrix(row)
        assert prune_error(k) > 0.0  # pruning destroys coefficients
        swapped = apply_column_swap(k, choose_L(3))
        assert prune_error(swapped) == 0.0  # the swap is lossless


class TestHandle:
    def test_plan_and_matmul(self, rng):
        dense = random_24_matrix(rng, 16, 32)
        b = rng.standard_normal((32, 12))
        handle = SpmmHandle()
        plan = handle.plan(dense, 12, precision=MmaPrecision.EXACT)
        d = handle.matmul(plan, b)
        assert np.allclose(d, dense @ b)

    def test_accumulator(self, rng):
        dense = random_24_matrix(rng, 8, 16)
        b = rng.standard_normal((16, 4))
        c = rng.standard_normal((8, 4))
        handle = SpmmHandle()
        plan = handle.plan(dense, 4, precision=MmaPrecision.EXACT)
        assert np.allclose(handle.matmul(plan, b, c), dense @ b + c)

    def test_rejects_dense_lhs(self, rng):
        handle = SpmmHandle()
        with pytest.raises(ValueError, match="strided swap"):
            handle.plan(rng.standard_normal((8, 16)), 4)

    def test_rejects_wrong_b(self, rng):
        handle = SpmmHandle()
        plan = handle.plan(random_24_matrix(rng, 8, 16), 4)
        with pytest.raises(ValueError, match="B must be"):
            handle.matmul(plan, np.zeros((16, 8)))

    def test_instruction_accounting(self, rng):
        handle = SpmmHandle()
        plan = handle.plan(random_24_matrix(rng, 16, 16), 8)
        handle.matmul(plan, rng.standard_normal((16, 8)))
        assert handle.stream.count("mma.sp") == 1

    def test_plan_validation(self, rng):
        handle = SpmmHandle()
        with pytest.raises(ValueError):
            handle.plan(random_24_matrix(rng, 8, 16), 0)
        with pytest.raises(ValueError):
            handle.plan(random_24_matrix(rng, 8, 16), 4, precision="bf16")
