"""Equivalence and interface tests for every evaluated baseline."""

import numpy as np
import pytest

from repro.baselines import (
    PAPER_METHODS,
    ConvStencilMethod,
    CuDNNMethod,
    DRStencilMethod,
    FlashFFTStencilMethod,
    LoRAStencilMethod,
    NaiveMethod,
    SpiderMethod,
    TCStencilMethod,
    all_paper_methods,
    im2col,
    low_rank_pairs,
    make_method,
    method_registry,
    toeplitz_kernel_matrix,
)
from repro.stencil import (
    Grid,
    make_box_kernel,
    make_star_kernel,
    naive_stencil,
)

METHOD_CLASSES = [
    CuDNNMethod,
    DRStencilMethod,
    TCStencilMethod,
    ConvStencilMethod,
    LoRAStencilMethod,
    FlashFFTStencilMethod,
    SpiderMethod,
]


@pytest.fixture(params=METHOD_CLASSES, ids=lambda c: c.name)
def method(request):
    return request.param()


class TestEquivalence:
    @pytest.mark.parametrize("r", [1, 2, 3])
    def test_2d_box_symmetric(self, method, rng, r):
        spec = make_box_kernel(2, r, rng, symmetric=True)
        g = Grid.random((25, 37), rng)
        assert method.supports(spec)
        assert np.allclose(
            method.run(spec, g), naive_stencil(spec, g), atol=1e-9
        )

    @pytest.mark.parametrize("r", [1, 2])
    def test_2d_star_symmetric(self, method, rng, r):
        spec = make_star_kernel(2, r, rng, symmetric=True)
        g = Grid.random((19, 30), rng)
        assert np.allclose(
            method.run(spec, g), naive_stencil(spec, g), atol=1e-9
        )

    @pytest.mark.parametrize("r", [1, 2])
    def test_1d(self, method, rng, r):
        spec = make_box_kernel(1, r, rng, symmetric=True)
        g = Grid.random((217,), rng)
        assert np.allclose(
            method.run(spec, g), naive_stencil(spec, g), atol=1e-9
        )

    def test_asymmetric_kernels(self, method, rng):
        spec = make_box_kernel(2, 2, rng, symmetric=False)
        g = Grid.random((15, 22), rng)
        if method.supports(spec):
            assert np.allclose(
                method.run(spec, g), naive_stencil(spec, g), atol=1e-9
            )
        else:
            assert isinstance(method, LoRAStencilMethod)


class TestCosts:
    def test_cost_interface(self, method, rng):
        spec = make_box_kernel(2, 2, rng, symmetric=True)
        cost = method.cost(spec, (10240, 10240))
        comp, inp, par = cost.per_point()
        assert comp > 0 and inp > 0 and par > 0

    def test_spider_cheapest_compute_vs_tensor_baselines(self, rng):
        spec = make_box_kernel(2, 3, rng, symmetric=True)
        shape = (10240, 10240)
        spider_c = SpiderMethod().cost(spec, shape).per_point()[0]
        for cls in (TCStencilMethod, ConvStencilMethod, LoRAStencilMethod):
            assert spider_c < cls().cost(spec, shape).per_point()[0]


class TestRegistry:
    def test_all_paper_methods_present(self):
        reg = method_registry()
        for name in PAPER_METHODS:
            assert name in reg

    def test_make_method(self):
        assert make_method("SPIDER").name == "SPIDER"
        with pytest.raises(KeyError):
            make_method("nonexistent")

    def test_all_paper_methods_order(self):
        assert [m.name for m in all_paper_methods()] == PAPER_METHODS

    def test_naive_registered(self):
        assert "Naive" in method_registry()


class TestCuDNNInternals:
    def test_im2col_shape(self, rng):
        padded = rng.standard_normal((6, 7))
        cols = im2col(padded, (3, 3))
        assert cols.shape == (9, 4 * 5)

    def test_im2col_first_column(self, rng):
        padded = rng.standard_normal((5, 5))
        cols = im2col(padded, (3, 3))
        assert np.array_equal(cols[:, 0], padded[:3, :3].reshape(-1))

    def test_batched_matches_unbatched(self, rng):
        spec = make_box_kernel(2, 1, rng)
        g = Grid.random((30, 30), rng)
        small = CuDNNMethod(batch_points=64).run(spec, g)
        big = CuDNNMethod().run(spec, g)
        assert np.allclose(small, big)

    def test_bad_batch_rejected(self):
        with pytest.raises(ValueError):
            CuDNNMethod(batch_points=0)


class TestTCStencilInternals:
    def test_radius_limit(self, rng):
        m = TCStencilMethod()
        spec8 = make_box_kernel(2, 8, rng)  # 2r = 16 = L: unsupported
        assert not m.supports(spec8)
        with pytest.raises(ValueError):
            m.run(spec8, Grid.random((40, 40), rng))

    def test_mma_issues_recorded(self, rng):
        m = TCStencilMethod()
        m.run(make_box_kernel(2, 1, rng), Grid.random((20, 20), rng))
        assert m.stream.count("mma") > 0

    def test_matrix_structure(self, rng):
        m = TCStencilMethod()
        row = rng.standard_normal(3)
        mat = m._build_matrix(row, 16, 14)
        assert mat.shape == (16, 16)
        assert (mat[14:] == 0).all()
        assert np.array_equal(mat[0, :3], row)


class TestConvStencilInternals:
    def test_toeplitz_structure(self, rng):
        row = rng.standard_normal(5)  # r=2
        k = toeplitz_kernel_matrix(row, 8)
        assert k.shape == (12, 8)
        for j in range(8):
            assert np.array_equal(k[j : j + 5, j], row)
        # over half zeros — the Figure-3 triangular-looking sparsity
        assert np.count_nonzero(k) / k.size < 0.55

    def test_c_validation(self):
        with pytest.raises(ValueError):
            ConvStencilMethod(c=0)


class TestLoRAInternals:
    def test_low_rank_pairs_reconstruct(self, rng):
        spec = make_box_kernel(2, 2, rng, symmetric=True)
        pairs = low_rank_pairs(spec.weights)
        recon = sum(np.outer(u, v) for u, v in pairs)
        assert np.allclose(recon, spec.weights)

    def test_rank_bounded_for_separable(self):
        u = np.array([1.0, 2.0, 1.0])
        w = np.outer(u, u)
        assert len(low_rank_pairs(w)) == 1

    def test_rejects_asymmetric(self, rng):
        m = LoRAStencilMethod()
        spec = make_box_kernel(2, 1, rng, symmetric=False)
        with pytest.raises(ValueError, match="symmetric"):
            m.run(spec, Grid.random((8, 8), rng))

    def test_rank_recorded(self, rng):
        m = LoRAStencilMethod()
        spec = make_box_kernel(2, 2, rng, symmetric=True)
        m.run(spec, Grid.random((12, 12), rng))
        assert 1 <= m.last_rank <= 5

    def test_non_square_kernel_rejected(self):
        with pytest.raises(ValueError):
            low_rank_pairs(np.ones((3, 5)))


class TestFlashFFTInternals:
    def test_kernel_spectrum_cached(self, rng):
        m = FlashFFTStencilMethod()
        spec = make_box_kernel(2, 1, rng, symmetric=True)
        g = Grid.random((16, 16), rng)
        m.run(spec, g)
        n = len(m._kernel_cache)
        m.run(spec, g)
        assert len(m._kernel_cache) == n  # amortized across iterations


class TestNaive:
    def test_naive_is_oracle(self, rng):
        spec = make_box_kernel(2, 1, rng)
        g = Grid.random((10, 10), rng)
        assert np.array_equal(NaiveMethod().run(spec, g), naive_stencil(spec, g))

    def test_naive_supports_3d(self, rng):
        assert NaiveMethod().supports(make_box_kernel(3, 1, rng))
