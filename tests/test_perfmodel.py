"""Shape assertions on the calibrated performance model — the Figure 10/11/12
reproduction targets (who wins, by what factor, where crossovers fall)."""

import numpy as np
import pytest

from repro.analysis.figures import figure10, figure11, figure12
from repro.analysis.perfmodel import (
    CALIBRATION,
    estimate_method,
    estimate_spider_variant,
)
from repro.analysis.redundancy import (
    SECTION_2_3_NARRATIVE,
    redundancy_factors,
)
from repro.baselines import PAPER_METHODS
from repro.core import SpiderVariant
from repro.stencil import make_box_kernel, make_workload

#: the paper's reported average speedups (§4.2)
PAPER_AVG = {
    "cuDNN": 6.20,
    "DRStencil": 4.71,
    "TCStencil": 3.13,
    "ConvStencil": 1.88,
    "LoRAStencil": 1.63,
    "FlashFFTStencil": 1.35,
}


@pytest.fixture(scope="module")
def panels():
    return figure10()


class TestFigure10:
    def test_spider_wins_every_shape(self, panels):
        for p in panels:
            best_other = max(
                v for m, v in p.gstencils.items() if m != "SPIDER"
            )
            assert p.spider > best_other, p.shape_id

    @pytest.mark.parametrize("method", list(PAPER_AVG))
    def test_average_speedup_band(self, panels, method):
        avg = float(np.mean([p.speedup_over(method) for p in panels]))
        ref = PAPER_AVG[method]
        assert ref * 0.65 <= avg <= ref * 1.35, f"{method}: {avg} vs {ref}"

    def test_drstencil_speedup_grows_with_radius(self, panels):
        by_id = {p.shape_id: p for p in panels}
        s = [by_id[f"Box-2D{r}R"].speedup_over("DRStencil") for r in (1, 2, 3)]
        assert s[0] < s[1] < s[2]
        # paper endpoints 4.27x and 8.82x
        assert 3.0 <= s[0] <= 6.5
        assert 6.5 <= s[2] <= 13.0

    def test_star_specialists_gain_on_star(self, panels):
        """DRStencil and TCStencil are relatively stronger on star shapes;
        SPIDER is shape-stable (§4.2)."""
        by_id = {p.shape_id: p for p in panels}
        for r in (1, 2, 3):
            box, star = by_id[f"Box-2D{r}R"], by_id[f"Star-2D{r}R"]
            for m in ("DRStencil", "TCStencil"):
                assert star.gstencils[m] > box.gstencils[m]
            assert star.spider == pytest.approx(box.spider, rel=0.01)

    def test_absolute_scale_plausible(self, panels):
        """SPIDER's modeled bars sit in the paper's axis ranges."""
        by_id = {p.shape_id: p.spider for p in panels}
        assert 380 <= by_id["1D1R"] <= 650
        assert 180 <= by_id["Box-2D1R"] <= 320
        assert 100 <= by_id["Box-2D2R"] <= 175
        assert 60 <= by_id["Box-2D3R"] <= 115


class TestFigure11:
    @pytest.mark.parametrize("shape_id", ["Box-2D1R", "Box-2D2R", "Box-2D3R"])
    def test_ramp_then_plateau(self, shape_id):
        s = figure11(shape_id).gstencils["SPIDER"]
        # strictly rising into the plateau ...
        assert s[0] < s[1] <= s[2] * 1.02
        # ... and stable within 5% across the late plateau
        plateau = s[3:]
        assert max(plateau) / min(plateau) < 1.05

    def test_small_size_crossover(self):
        """§4.3: SPIDER loses to ConvStencil/LoRAStencil at (512, 512) and
        wins from mid sizes on."""
        s = figure11("Box-2D2R")
        i_small, i_big = 0, len(s.sizes) - 1
        for m in ("ConvStencil", "LoRAStencil"):
            assert s.gstencils["SPIDER"][i_small] < s.gstencils[m][i_small]
            assert s.gstencils["SPIDER"][i_big] > s.gstencils[m][i_big]

    def test_plateau_factor_over_best_baseline(self):
        """§4.3: 1.86x average over the best baseline at the plateau."""
        ratios = []
        for sid in ("1D1R", "1D2R", "Box-2D1R", "Box-2D2R", "Box-2D3R"):
            s = figure11(sid)
            best = max(
                s.gstencils[m][-1] for m in s.gstencils if m != "SPIDER"
            )
            ratios.append(s.gstencils["SPIDER"][-1] / best)
        avg = float(np.mean(ratios))
        assert 1.3 <= avg <= 2.6  # paper: 1.86x

    def test_1d_no_cliff(self):
        s = figure11("1D1R").gstencils["SPIDER"]
        # monotone-ish: no drop larger than 5% between consecutive sizes
        for a, b in zip(s, s[1:]):
            assert b > a * 0.95


class TestFigure12:
    @pytest.fixture(scope="class")
    def points(self):
        return figure12()

    def test_tc_transform_gain(self, points):
        """SPIDER w. TC beats TCStencil once parallelism suffices
        (paper avg 1.54x)."""
        for p in points[1:]:
            assert 1.3 <= p.tc_gain <= 2.6

    def test_sptc_gain_band(self, points):
        """+SpTC ≈ 1.66x on large sizes, bounded by the 2x hardware limit."""
        for p in points[1:]:
            assert 1.4 <= p.sptc_gain <= 2.0

    def test_sptc_dip_at_1280(self, points):
        """§4.4: the SpTC version underutilizes at (1280, 1280) — its gain
        there is visibly below the large-size gain (paper: 1.43 vs 1.74)."""
        assert points[0].sptc_gain < points[-1].sptc_gain * 0.9

    def test_co_gain_band(self, points):
        """Computing optimizations contribute ≈ 1.08x (peak 1.12x)."""
        for p in points:
            assert 1.03 <= p.co_gain <= 1.15

    def test_total_speedup_grows_with_size(self, points):
        totals = [p.total_speedup for p in points]
        assert totals[0] < totals[-1]
        assert totals[-1] > 2.5


class TestRedundancySection23:
    @pytest.mark.parametrize("method", list(SECTION_2_3_NARRATIVE))
    def test_narrative_numbers_exact(self, method, rng):
        spec = make_box_kernel(2, 3, rng, symmetric=True)
        got = redundancy_factors(method, spec, (10240, 10240)).as_tuple()
        ref = SECTION_2_3_NARRATIVE[method]
        for g, r in zip(got, ref):
            assert g == pytest.approx(r, abs=0.01)


class TestModelInternals:
    def test_all_paper_methods_calibrated(self):
        for m in PAPER_METHODS:
            assert m in CALIBRATION

    def test_unknown_method_raises(self, rng):
        spec = make_box_kernel(2, 1, rng)
        with pytest.raises(KeyError):
            estimate_method("Unknown", spec, (64, 64))

    def test_estimate_breakdown_fields(self, rng):
        spec = make_box_kernel(2, 2, rng)
        est = estimate_method("SPIDER", spec, (10240, 10240))
        assert est.bound in ("compute", "smem", "dram")
        assert est.saturation <= 1.0
        assert est.time_per_point > 0

    def test_variant_ordering_large_size(self, rng):
        spec = make_box_kernel(2, 2, rng, symmetric=True)
        shape = (10240, 10240)
        tc = estimate_spider_variant(SpiderVariant.TC, spec, shape).gstencils
        sptc = estimate_spider_variant(SpiderVariant.SPTC, spec, shape).gstencils
        co = estimate_spider_variant(SpiderVariant.SPTC_CO, spec, shape).gstencils
        assert tc < sptc < co
