"""Cross-cutting property tests and failure injection.

These widen the hypothesis coverage beyond the per-module suites: the full
SPIDER pipeline fuzzed end-to-end, the faithful-vs-fast agreement as a
property, and corruption of the compressed representation (which the
format layer must detect or which must visibly change results — never be
silently absorbed).
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import Spider, encode_kernel_row
from repro.sptc import MmaPrecision, Sparse24Matrix, sparse_matmul
from repro.stencil import (
    BoundaryCondition,
    Grid,
    ShapeType,
    StencilSpec,
    naive_stencil,
)


def spec_strategy(dims: int, max_radius: int = 3):
    """Random StencilSpec values via hypothesis."""

    @st.composite
    def build(draw):
        r = draw(st.integers(1, max_radius))
        side = 2 * r + 1
        n = side**dims
        vals = draw(
            st.lists(
                st.floats(-4, 4, allow_nan=False, width=32),
                min_size=n,
                max_size=n,
            )
        )
        w = np.array(vals, dtype=np.float64).reshape((side,) * dims)
        return StencilSpec(ShapeType.BOX, dims, r, w)

    return build()


class TestEndToEndFuzz:
    @given(spec=spec_strategy(1), n=st.integers(5, 120), seed=st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_1d_pipeline_property(self, spec, n, seed):
        rng = np.random.default_rng(seed)
        g = Grid.random((n,), rng)
        out = Spider(spec).run(g)
        ref = naive_stencil(spec, g)
        assert np.allclose(out, ref, atol=1e-9)

    @given(
        spec=spec_strategy(2, max_radius=2),
        rows=st.integers(1, 16),
        cols=st.integers(1, 24),
        bc=st.sampled_from(
            [BoundaryCondition.ZERO, BoundaryCondition.PERIODIC]
        ),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_2d_pipeline_property(self, spec, rows, cols, bc, seed):
        rng = np.random.default_rng(seed)
        g = Grid.random((rows, cols), rng, bc)
        out = Spider(spec).run(g)
        assert np.allclose(out, naive_stencil(spec, g), atol=1e-9)

    @given(r=st.integers(1, 3), seed=st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_faithful_equals_fast_property(self, r, seed):
        rng = np.random.default_rng(seed)
        w = rng.standard_normal((2 * r + 1, 2 * r + 1))
        spec = StencilSpec(ShapeType.BOX, 2, r, w)
        g = Grid.random((4, 2 * (2 * r + 2)), rng)
        sp = Spider(spec)
        assert np.allclose(sp.run_faithful(g).output, sp.run(g), atol=1e-10)

    @given(spec=spec_strategy(2, max_radius=2), seed=st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_linearity_property(self, spec, seed):
        """The whole pipeline is linear: S(a x + b y) = a S(x) + b S(y)."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((10, 14))
        y = rng.standard_normal((10, 14))
        sp = Spider(spec)
        lhs = sp.run(Grid(2.5 * x - 1.5 * y))
        rhs = 2.5 * sp.run(Grid(x)) - 1.5 * sp.run(Grid(y))
        assert np.allclose(lhs, rhs, atol=1e-9)


class TestFailureInjection:
    def test_corrupted_position_detected_or_changes_result(self, rng):
        """Flipping one metadata position must never be silently absorbed:
        either the container rejects it (non-increasing pair) or the
        product changes for a structural slot."""
        enc = encode_kernel_row(rng.standard_normal(7))
        b = rng.standard_normal((enc.width, 5))
        baseline = sparse_matmul(enc.sparse, b, precision=MmaPrecision.EXACT)
        detected = changed = 0
        for i in range(enc.sparse.positions.shape[0]):
            for s in range(enc.sparse.positions.shape[1]):
                if enc.sparse.values[i, s] == 0.0:
                    continue  # placeholder slots are value-dead
                pos = enc.sparse.positions.copy()
                pos[i, s] = (pos[i, s] + 1) % 4
                try:
                    bad = Sparse24Matrix(enc.sparse.values.copy(), pos, enc.width)
                except ValueError:
                    detected += 1
                    continue
                out = sparse_matmul(bad, b, precision=MmaPrecision.EXACT)
                if not np.allclose(out, baseline):
                    changed += 1
                else:  # pragma: no cover - would be a real bug
                    raise AssertionError(
                        f"corruption at ({i},{s}) silently absorbed"
                    )
        assert detected + changed > 0

    def test_corrupted_value_changes_result(self, rng):
        enc = encode_kernel_row(rng.standard_normal(5))
        b = rng.standard_normal((enc.width, 3))
        baseline = sparse_matmul(enc.sparse, b, precision=MmaPrecision.EXACT)
        vals = enc.sparse.values.copy()
        # perturb the first structural (non-placeholder) slot
        i, s = np.argwhere(vals != 0)[0]
        vals[i, s] += 1.0
        bad = Sparse24Matrix(vals, enc.sparse.positions.copy(), enc.width)
        out = sparse_matmul(bad, b, precision=MmaPrecision.EXACT)
        assert not np.allclose(out, baseline)

    def test_nan_kernel_rejected_at_spec_level(self):
        w = np.ones((3, 3))
        w[0, 0] = np.inf
        with pytest.raises(ValueError):
            StencilSpec(ShapeType.BOX, 2, 1, w)


class TestMetamorphic:
    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_translation_equivariance(self, seed):
        """Shifting the input shifts the output (away from boundaries)."""
        rng = np.random.default_rng(seed)
        w = rng.standard_normal((3, 3))
        spec = StencilSpec(ShapeType.BOX, 2, 1, w)
        sp = Spider(spec)
        x = rng.standard_normal((16, 16))
        shifted = np.roll(x, (2, 3), axis=(0, 1))
        out = sp.run(Grid(x))
        out_shifted = sp.run(Grid(shifted))
        # compare interior where neither halo matters
        a = np.roll(out, (2, 3), axis=(0, 1))[4:-4, 5:-5]
        b = out_shifted[4:-4, 5:-5]
        assert np.allclose(a, b, atol=1e-9)

    @given(seed=st.integers(0, 2**31), scale=st.floats(0.1, 8.0))
    @settings(max_examples=15, deadline=None)
    def test_kernel_scaling(self, seed, scale):
        """Scaling the kernel scales the output (AOT encoding is linear)."""
        rng = np.random.default_rng(seed)
        w = rng.standard_normal((5, 5))
        spec = StencilSpec(ShapeType.BOX, 2, 2, w)
        scaled = spec.with_weights(scale * w)
        g = Grid.random((12, 18), rng)
        assert np.allclose(
            Spider(scaled).run(g), scale * Spider(spec).run(g), atol=1e-8
        )
