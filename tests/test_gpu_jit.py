"""Tests for the symbolic mini-compiler."""

import pytest

from repro.gpu.jit import (
    Add,
    Const,
    FloorDiv,
    Mod,
    Mul,
    Piecewise,
    Var,
    count_ops,
    evaluate,
    unroll,
)


class TestConstruction:
    def test_operator_sugar(self):
        lane = Var("lane")
        e = 2 * (lane % 4) + 1
        assert isinstance(e, Add)
        assert evaluate(e, {"lane": 7}) == 7

    def test_floordiv(self):
        i = Var("i")
        assert evaluate(8 * (i // 2), {"i": 3}) == 8

    def test_bad_operand_type(self):
        with pytest.raises(TypeError):
            Var("x") + 1.5


class TestFolding:
    def test_constants_merge_across_sum(self):
        lane = Var("lane")
        e = (2 * (lane % 4) + 8) + 16
        folded = unroll(e, {})
        # one Mod, one Mul, one Add — constants merged into a single literal
        assert count_ops(folded) == 3

    def test_full_fold_to_const(self):
        i = Var("i")
        folded = unroll(8 * (i // 2) + (i % 2), {"i": 3})
        assert isinstance(folded, Const)
        assert folded.value == 9
        assert count_ops(folded) == 0

    def test_mul_identities(self):
        x = Var("x")
        assert count_ops(unroll(1 * x, {})) == 0
        assert unroll(0 * x, {}) == Const(0)

    def test_add_zero_identity(self):
        x = Var("x")
        assert count_ops(unroll(x + 0, {})) == 0


class TestPiecewise:
    def test_resolves_on_unrolled_var(self):
        pw = Piecewise("k", ((0, Const(16)), (1, Const(-16))))
        assert evaluate(pw, {"k": 1}) == -16

    def test_unresolved_raises(self):
        pw = Piecewise("k", ((0, Const(16)),))
        with pytest.raises(ValueError, match="zero-cost invariant"):
            unroll(pw, {})

    def test_missing_case_raises(self):
        pw = Piecewise("k", ((0, Const(16)),))
        with pytest.raises(KeyError):
            unroll(pw, {"k": 5})

    def test_nested_piecewise(self):
        inner = Piecewise("i", ((0, Const(0)), (1, Const(8))))
        outer = Piecewise("k", ((0, inner),))
        assert evaluate(outer, {"k": 0, "i": 1}) == 8

    def test_count_ops_on_unresolved_piecewise_raises(self):
        with pytest.raises(ValueError):
            count_ops(Piecewise("k", ((0, Const(1)),)))


class TestEvaluate:
    def test_unbound_raises(self):
        with pytest.raises(ValueError, match="unbound"):
            evaluate(Var("lane") + 1, {})

    def test_matches_python_semantics(self):
        lane, i = Var("lane"), Var("i")
        e = 2 * (lane % 4) + 8 * (i // 2) + (i % 2)
        for l in range(8):
            for ii in range(4):
                assert evaluate(e, {"lane": l, "i": ii}) == 2 * (l % 4) + 8 * (
                    ii // 2
                ) + (ii % 2)
