"""Tests for sparse MMA semantics: mma.sp against its dense equivalent."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sptc import fragments as fr
from repro.sptc.formats import GROUP, Sparse24Matrix
from repro.sptc.instruction import InstructionStream
from repro.sptc.mma import MmaPrecision
from repro.sptc.mma_sp import (
    MMA_SP_M16N8K32,
    mma_sp,
    mma_sp_lanewise,
    sparse_matmul,
    synthesize_metadata_registers,
)

from .test_formats import random_24_matrix


class TestMatrixPath:
    def test_equals_dense_product(self, rng):
        a = Sparse24Matrix.from_dense(random_24_matrix(rng, 16, 16))
        b = rng.standard_normal((16, 8))
        d = mma_sp(a, b, precision=MmaPrecision.EXACT)
        assert np.allclose(d, a.to_dense() @ b)

    def test_accumulator(self, rng):
        a = Sparse24Matrix.from_dense(random_24_matrix(rng, 16, 16))
        b = rng.standard_normal((16, 8))
        c = rng.standard_normal((16, 8))
        d = mma_sp(a, b, c, precision=MmaPrecision.EXACT)
        assert np.allclose(d, a.to_dense() @ b + c)

    def test_k32_shape(self, rng):
        a = Sparse24Matrix.from_dense(random_24_matrix(rng, 16, 32))
        b = rng.standard_normal((32, 8))
        d = mma_sp(a, b, shape=MMA_SP_M16N8K32, precision=MmaPrecision.EXACT)
        assert np.allclose(d, a.to_dense() @ b)

    def test_shape_validation(self, rng):
        a = Sparse24Matrix.from_dense(random_24_matrix(rng, 16, 16))
        with pytest.raises(ValueError, match="B must be"):
            mma_sp(a, np.zeros((8, 8)))
        a8 = Sparse24Matrix.from_dense(random_24_matrix(rng, 8, 16))
        with pytest.raises(ValueError, match="logical"):
            mma_sp(a8, np.zeros((16, 8)))

    def test_issue_counting(self, rng):
        stream = InstructionStream()
        a = Sparse24Matrix.from_dense(random_24_matrix(rng, 16, 16))
        mma_sp(a, rng.standard_normal((16, 8)), stream=stream)
        assert stream.count("mma.sp") == 1

    @given(seed=st.integers(0, 2**31), density=st.integers(0, 2))
    @settings(max_examples=30, deadline=None)
    def test_selection_gather_property(self, seed, density):
        rng = np.random.default_rng(seed)
        dense = (
            random_24_matrix(rng, 16, 16, density)
            if density
            else np.zeros((16, 16))
        )
        a = Sparse24Matrix.from_dense(dense)
        b = rng.standard_normal((16, 8))
        assert np.allclose(
            mma_sp(a, b, precision=MmaPrecision.EXACT), dense @ b
        )


class TestSparseMatmul:
    def test_arbitrary_shapes(self, rng):
        dense = random_24_matrix(rng, 8, 24)
        a = Sparse24Matrix.from_dense(dense)
        b = rng.standard_normal((24, 50))
        d = sparse_matmul(a, b, precision=MmaPrecision.EXACT)
        assert np.allclose(d, dense @ b)

    def test_tiled_issue_count(self, rng):
        stream = InstructionStream()
        dense = random_24_matrix(rng, 8, 32)
        a = Sparse24Matrix.from_dense(dense)
        sparse_matmul(a, rng.standard_normal((32, 20)), stream=stream)
        # ceil(8/16)*ceil(20/8)*ceil(32/16) = 1*3*2
        assert stream.count("mma.sp") == 6

    def test_b_shape_checked(self, rng):
        a = Sparse24Matrix.from_dense(random_24_matrix(rng, 8, 16))
        with pytest.raises(ValueError):
            sparse_matmul(a, np.zeros((8, 4)))


class TestLanewisePath:
    @pytest.mark.parametrize("selector", [0, 1, 2, 3])
    def test_matches_matrix_path(self, rng, selector):
        dense = random_24_matrix(rng, 16, 16)
        a = Sparse24Matrix.from_dense(dense)
        b = rng.standard_normal((16, 8))
        b_regs = fr.distribute_b(b)
        d_regs = mma_sp_lanewise(
            a, b_regs, selector=selector, precision=MmaPrecision.EXACT
        )
        d = fr.collect_acc(d_regs)
        assert np.allclose(d, dense @ b)

    def test_accumulator_regs(self, rng):
        dense = random_24_matrix(rng, 16, 16)
        a = Sparse24Matrix.from_dense(dense)
        b = rng.standard_normal((16, 8))
        c = rng.standard_normal((16, 8))
        d_regs = mma_sp_lanewise(
            a,
            fr.distribute_b(b),
            fr.distribute_acc(c),
            precision=MmaPrecision.EXACT,
        )
        assert np.allclose(fr.collect_acc(d_regs), dense @ b + c)

    def test_metadata_register_synthesis(self, rng):
        a = Sparse24Matrix.from_dense(random_24_matrix(rng, 16, 16))
        regs = synthesize_metadata_registers(a, selector=1)
        active = fr.metadata_fragment_lanes(1)
        inactive = [l for l in range(32) if l not in active]
        assert (regs[inactive] == 0).all()

    def test_explicit_metadata_regs(self, rng):
        dense = random_24_matrix(rng, 16, 16)
        a = Sparse24Matrix.from_dense(dense)
        b = rng.standard_normal((16, 8))
        regs = synthesize_metadata_registers(a, selector=2)
        d_regs = mma_sp_lanewise(
            a,
            fr.distribute_b(b),
            metadata_regs=regs,
            selector=2,
            precision=MmaPrecision.EXACT,
        )
        assert np.allclose(fr.collect_acc(d_regs), dense @ b)

    def test_requires_m16k16(self, rng):
        a = Sparse24Matrix.from_dense(random_24_matrix(rng, 8, 16))
        with pytest.raises(ValueError, match="m16n8k16"):
            mma_sp_lanewise(a, np.zeros((32, 4)))

    def test_fp16_close_to_exact(self, rng):
        dense = random_24_matrix(rng, 16, 16)
        a = Sparse24Matrix.from_dense(dense)
        b = rng.standard_normal((16, 8))
        d16 = fr.collect_acc(
            mma_sp_lanewise(a, fr.distribute_b(b), precision=MmaPrecision.FP16)
        )
        assert np.allclose(d16, dense @ b, atol=5e-2)
