"""Tests for the distributed-stencil layer (decomposition + halo exchange)."""

import numpy as np
import pytest

from repro import Grid, Spider
from repro.stencil import (
    BoundaryCondition,
    make_box_kernel,
    make_star_kernel,
    naive_stencil,
    run_iterations,
)
from repro.stencil.distributed import (
    DistributedStencil,
    DomainDecomposition,
    LocalWorld,
    halo_traffic,
)


class TestDecomposition:
    def test_blocks_tile_the_grid(self):
        decomp = DomainDecomposition((17, 23), 6)
        covered = np.zeros((17, 23), dtype=int)
        for sub in decomp.subdomains():
            covered[sub.slices] += 1
        assert (covered == 1).all()

    def test_balanced_blocks(self):
        decomp = DomainDecomposition((100,), 7)
        sizes = [sub.shape[0] for sub in decomp.subdomains()]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 100

    def test_near_square_process_grid(self):
        decomp = DomainDecomposition((64, 64), 12)
        py, px = decomp.proc_grid
        assert py * px == 12
        assert py in (3, 4)

    def test_neighbours(self):
        decomp = DomainDecomposition((64, 64), 4)  # 2x2 grid
        assert decomp.neighbour(0, 0, 1) == 2
        assert decomp.neighbour(0, 1, 1) == 1
        assert decomp.neighbour(0, 0, -1) is None
        assert decomp.neighbour(3, 0, -1) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DomainDecomposition((8, 8), 0)
        with pytest.raises(ValueError):
            DomainDecomposition((4,), 8)  # more ranks than cells
        with pytest.raises(ValueError):
            DomainDecomposition((2, 2, 2), 2)


class TestHaloTraffic:
    def test_single_rank_no_traffic(self):
        assert halo_traffic(DomainDecomposition((64, 64), 1), 2) == 0

    def test_strip_partition_traffic(self):
        # 4 ranks in a row over (64,): 3 interior interfaces x 2 directions
        decomp = DomainDecomposition((64,), 4)
        assert halo_traffic(decomp, radius=2, elem_bytes=8) == 6 * 2 * 8

    def test_more_ranks_more_traffic(self):
        g = (128, 128)
        t4 = halo_traffic(DomainDecomposition(g, 4), 1)
        t16 = halo_traffic(DomainDecomposition(g, 16), 1)
        assert t16 > t4


class TestLocalWorld:
    def test_mailbox_roundtrip(self):
        world = LocalWorld(2)
        world.post(0, 1, np.arange(3))
        assert np.array_equal(world.collect(0, 1), np.arange(3))
        assert world.pending == 0

    def test_missing_message_raises(self):
        world = LocalWorld(2)
        with pytest.raises(RuntimeError):
            world.collect(0, 1)

    def test_buffers_are_copies(self):
        world = LocalWorld(2)
        buf = np.ones(3)
        world.post(0, 1, buf)
        buf[:] = 9.0
        assert (world.collect(0, 1) == 1.0).all()


class TestDistributedSweep:
    @pytest.mark.parametrize("ranks", [1, 2, 4, 6])
    @pytest.mark.parametrize("r", [1, 2])
    def test_matches_global_reference_2d(self, rng, ranks, r):
        spec = make_box_kernel(2, r, rng)
        g = Grid.random((25, 33), rng)
        ds = DistributedStencil(spec, DomainDecomposition(g.shape, ranks))
        out = ds.step(g)
        assert np.allclose(out.data, naive_stencil(spec, g))

    @pytest.mark.parametrize("ranks", [1, 3, 5])
    def test_matches_global_reference_1d(self, rng, ranks):
        spec = make_box_kernel(1, 2, rng)
        g = Grid.random((71,), rng)
        ds = DistributedStencil(spec, DomainDecomposition(g.shape, ranks))
        out = ds.step(g)
        assert np.allclose(out.data, naive_stencil(spec, g))

    def test_star_stencil_corners(self, rng):
        # star kernels still read diagonal halo cells? no — but box ones do;
        # run a box kernel on a 2x2 process grid to exercise corner halos
        spec = make_box_kernel(2, 2, rng)
        g = Grid.random((16, 16), rng)
        ds = DistributedStencil(spec, DomainDecomposition(g.shape, 4))
        assert np.allclose(ds.step(g).data, naive_stencil(spec, g))

    def test_multistep_matches_iterated_reference(self, rng):
        spec = make_star_kernel(2, 1, rng)
        g = Grid.random((20, 24), rng)
        ds = DistributedStencil(spec, DomainDecomposition(g.shape, 4))
        out = ds.run(g, 5)
        ref, _ = run_iterations(spec, g, 5)
        assert np.allclose(out.data, ref.data)

    def test_spider_executor_distributed(self, rng):
        """The full stack: decomposed domain, halo exchange, and SPIDER's
        SpTC pipeline as the per-rank executor."""
        spec = make_box_kernel(2, 1, rng)
        g = Grid.random((24, 28), rng)
        spider = Spider(spec)
        ds = DistributedStencil(
            spec,
            DomainDecomposition(g.shape, 4),
            executor=lambda s, gr: spider.run(gr),
        )
        assert np.allclose(ds.step(g).data, naive_stencil(spec, g))

    def test_traffic_accounted(self, rng):
        spec = make_box_kernel(2, 1, rng)
        g = Grid.random((16, 16), rng)
        ds = DistributedStencil(spec, DomainDecomposition(g.shape, 4))
        ds.step(g)
        assert ds.bytes_exchanged > 0

    def test_block_thinner_than_halo_rejected(self, rng):
        spec = make_box_kernel(2, 3, rng)
        with pytest.raises(ValueError, match="thinner"):
            DistributedStencil(spec, DomainDecomposition((8, 8), 16))

    def test_periodic_multirank_rejected(self, rng):
        spec = make_box_kernel(2, 1, rng)
        g = Grid.random((16, 16), rng, BoundaryCondition.PERIODIC)
        ds = DistributedStencil(spec, DomainDecomposition(g.shape, 4))
        with pytest.raises(ValueError, match="ZERO"):
            ds.step(g)

    def test_periodic_single_rank_ok(self, rng):
        spec = make_box_kernel(2, 1, rng)
        g = Grid.random((12, 12), rng, BoundaryCondition.PERIODIC)
        ds = DistributedStencil(spec, DomainDecomposition(g.shape, 1))
        assert np.allclose(ds.step(g).data, naive_stencil(spec, g))

    def test_dims_mismatch_rejected(self, rng):
        spec = make_box_kernel(1, 1, rng)
        with pytest.raises(ValueError, match="mismatch"):
            DistributedStencil(spec, DomainDecomposition((8, 8), 2))
