"""CLI additions: --version and the serve-bench subcommand."""

import json

import pytest

import repro
from repro.cli import build_parser, main


def test_version_flag_prints_package_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    assert repro.__version__ in out


def test_version_flag_registered_on_parser():
    parser = build_parser()
    actions = {
        a.option_strings[0] for a in parser._actions if a.option_strings
    }
    assert "--version" in actions


def test_serve_bench_smoke(capsys):
    rc = main(
        [
            "serve-bench",
            "--requests",
            "60",
            "--workers",
            "2",
            "--batch",
            "8",
            "--size",
            "16x16",
            "--shapes",
            "heat2d, blur2d",  # whitespace after commas must be tolerated
            "--json",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "plan cache" in out
    assert "throughput" in out
    payload = json.loads(out[out.index("{"):])
    assert payload["requests"] == 60
    assert payload["errors"] == 0
    assert 0.0 <= payload["cache_hit_rate"] <= 1.0


def test_serve_bench_steps_smoke(capsys):
    rc = main(
        [
            "serve-bench",
            "--requests",
            "24",
            "--workers",
            "2",
            "--size",
            "16x16",
            "--shapes",
            "heat2d",
            "--steps",
            "4",
            "--json",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "sweeps advanced" in out
    assert "sweep throughput" in out
    payload = json.loads(out[out.index("{"):])
    assert payload["steps"] == 4
    assert payload["sweeps"] == 24 * 4
    assert payload["sweeps_per_s"] > payload["throughput_rps"]
    assert payload["errors"] == 0


def test_serve_bench_fused_temporal_mode_smoke(capsys):
    rc = main(
        [
            "serve-bench",
            "--requests",
            "16",
            "--workers",
            "2",
            "--size",
            "24x24",
            "--shapes",
            "heat2d",
            "--steps",
            "2",
            "--temporal-mode",
            "fused",
        ]
    )
    assert rc == 0
    assert "requests served        16" in capsys.readouterr().out


def test_serve_bench_open_loop_smoke(capsys):
    rc = main(
        [
            "serve-bench",
            "--requests",
            "20",
            "--workers",
            "2",
            "--size",
            "16x16",
            "--shapes",
            "heat2d",
            "--rate",
            "5000",
        ]
    )
    assert rc == 0
    assert "requests served        20" in capsys.readouterr().out
