"""Tests for device specs, occupancy and the roofline timing model."""

import pytest

from repro.gpu.device import A100_80GB_PCIE, GENERIC_GPU, Pipe
from repro.gpu.kernel import KernelLaunch
from repro.gpu.occupancy import (
    BlockResources,
    occupancy,
    saturation_factor,
    wave_efficiency,
)
from repro.gpu.timing import KernelCost, estimate_time


class TestDevice:
    def test_a100_pipes(self):
        assert A100_80GB_PCIE.peak(Pipe.SPTC_FP16) == 2 * A100_80GB_PCIE.peak(
            Pipe.TC_FP16
        )
        assert A100_80GB_PCIE.peak(Pipe.CUDA_FP64) == pytest.approx(9.7e12)

    def test_unknown_pipe_raises(self):
        with pytest.raises(KeyError):
            A100_80GB_PCIE.peak("tc_int4")

    def test_resident_threads(self):
        assert A100_80GB_PCIE.max_resident_threads == 108 * 2048


class TestOccupancy:
    def test_thread_limited(self):
        blk = BlockResources(threads=1024, registers_per_thread=16)
        assert occupancy(A100_80GB_PCIE, blk) == 1.0

    def test_register_limited(self):
        blk = BlockResources(threads=256, registers_per_thread=128)
        # 65536/(128*256) = 2 blocks -> 512/2048 threads
        assert occupancy(A100_80GB_PCIE, blk) == pytest.approx(0.25)

    def test_shared_memory_limited(self):
        blk = BlockResources(threads=128, shared_mem_bytes=100_000)
        assert occupancy(A100_80GB_PCIE, blk) == pytest.approx(128 / 2048)

    def test_does_not_fit_raises(self):
        blk = BlockResources(threads=256, shared_mem_bytes=200_000)
        with pytest.raises(ValueError, match="does not fit"):
            occupancy(A100_80GB_PCIE, blk)

    def test_non_multiple_of_warp_rejected(self):
        with pytest.raises(ValueError):
            BlockResources(threads=100)

    def test_wave_efficiency(self):
        assert wave_efficiency(864, 864) == 1.0
        assert wave_efficiency(865, 864) == pytest.approx(865 / 1728)

    def test_saturation_ramp_monotone(self):
        blk = BlockResources(threads=256, registers_per_thread=32)
        sats = [
            saturation_factor(A100_80GB_PCIE, blk, n)
            for n in (8, 64, 512, 4096, 32768)
        ]
        assert sats[0] < sats[1] < sats[2]
        assert sats[-1] > 0.9


class TestTiming:
    def test_compute_bound(self):
        cost = KernelCost(flops=1e12, pipe=Pipe.TC_FP16, dram_bytes=1e3)
        t = estimate_time(A100_80GB_PCIE, cost)
        assert t.bound == "compute"
        assert t.total_s > 0

    def test_memory_bound(self):
        cost = KernelCost(flops=1e3, pipe=Pipe.TC_FP16, dram_bytes=1e12)
        t = estimate_time(A100_80GB_PCIE, cost)
        assert t.bound == "memory"

    def test_launch_overhead_included(self):
        cost = KernelCost(flops=0.0, pipe=Pipe.TC_FP16, dram_bytes=0.0)
        t = estimate_time(A100_80GB_PCIE, cost, launches=2)
        assert t.total_s == pytest.approx(2 * A100_80GB_PCIE.launch_overhead_s)

    def test_efficiency_validation(self):
        with pytest.raises(ValueError):
            KernelCost(flops=1, pipe=Pipe.TC_FP16, dram_bytes=1, compute_efficiency=0)
        with pytest.raises(ValueError):
            KernelCost(flops=-1, pipe=Pipe.TC_FP16, dram_bytes=1)

    def test_generic_device_slower(self):
        cost = KernelCost(flops=1e12, pipe=Pipe.TC_FP16, dram_bytes=1e9)
        t_a100 = estimate_time(A100_80GB_PCIE, cost).total_s
        t_gen = estimate_time(GENERIC_GPU, cost).total_s
        assert t_gen > t_a100


class TestKernelLaunch:
    def test_totals(self):
        kl = KernelLaunch(grid=10, block=BlockResources(threads=256))
        assert kl.total_threads == 2560
        assert kl.total_warps == 80

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            KernelLaunch(grid=0, block=BlockResources(threads=32))
