"""Tests for the golden reference executors."""

import numpy as np
import pytest

from repro.stencil import (
    BoundaryCondition,
    Grid,
    l2_error,
    make_box_kernel,
    make_star_kernel,
    max_abs_error,
    naive_stencil,
    named_stencil,
    run_iterations,
    vectorized_stencil,
)


class TestNaiveVsVectorized:
    @pytest.mark.parametrize("dims,shape", [(1, (40,)), (2, (9, 13)), (3, (5, 6, 7))])
    @pytest.mark.parametrize("r", [1, 2])
    def test_agreement_box(self, rng, dims, shape, r):
        spec = make_box_kernel(dims, r, rng)
        g = Grid.random(shape, rng)
        assert np.allclose(naive_stencil(spec, g), vectorized_stencil(spec, g))

    @pytest.mark.parametrize(
        "bc",
        [
            BoundaryCondition.ZERO,
            BoundaryCondition.PERIODIC,
            BoundaryCondition.NEAREST,
        ],
    )
    def test_agreement_boundary_conditions(self, rng, bc):
        spec = make_star_kernel(2, 2, rng)
        g = Grid.random((12, 15), rng, bc)
        assert np.allclose(naive_stencil(spec, g), vectorized_stencil(spec, g))

    def test_dims_mismatch_raises(self, rng):
        spec = make_box_kernel(2, 1, rng)
        with pytest.raises(ValueError):
            naive_stencil(spec, Grid.random((10,), rng))
        with pytest.raises(ValueError):
            vectorized_stencil(spec, Grid.random((10,), rng))

    def test_identity_kernel(self):
        w = np.zeros((3, 3))
        w[1, 1] = 1.0
        from repro.stencil.spec import ShapeType, StencilSpec

        spec = StencilSpec(ShapeType.BOX, 2, 1, w)
        g = Grid(np.arange(12, dtype=float).reshape(3, 4))
        assert np.allclose(naive_stencil(spec, g), g.data)

    def test_shift_kernel(self):
        # kernel picking the left neighbour: out[i] = in[i-1]
        w = np.array([1.0, 0.0, 0.0])
        from repro.stencil.spec import ShapeType, StencilSpec

        spec = StencilSpec(ShapeType.BOX, 1, 1, w)
        g = Grid(np.arange(5, dtype=float))
        out = naive_stencil(spec, g)
        assert np.allclose(out, [0, 0, 1, 2, 3])


class TestIterations:
    def test_step_count(self, rng):
        spec = named_stencil("heat2d")
        g = Grid.random((16, 16), rng)
        final, snaps = run_iterations(spec, g, 5, record_every=2)
        assert len(snaps) == 2  # after steps 2 and 4

    def test_zero_steps_identity(self, rng):
        spec = named_stencil("heat2d")
        g = Grid.random((8, 8), rng)
        final, _ = run_iterations(spec, g, 0)
        assert final is g

    def test_negative_steps_rejected(self, rng):
        with pytest.raises(ValueError):
            run_iterations(named_stencil("heat2d"), Grid.random((8, 8), rng), -1)

    def test_heat_diffusion_decays(self, rng):
        # with zero boundaries, total heat leaks out monotonically
        spec = named_stencil("heat2d")
        g = Grid(np.abs(rng.standard_normal((20, 20))))
        final, _ = run_iterations(spec, g, 50)
        assert final.data.sum() < g.data.sum()
        assert (final.data >= -1e-12).all()

    def test_custom_executor_used(self, rng):
        calls = []

        def exe(spec, grid):
            calls.append(1)
            return grid.data

        final, _ = run_iterations(
            named_stencil("heat2d"), Grid.random((4, 4), rng), 3, executor=exe
        )
        assert len(calls) == 3


class TestErrorMetrics:
    def test_l2_zero_for_identical(self, rng):
        a = rng.standard_normal((5, 5))
        assert l2_error(a, a) == 0.0

    def test_max_abs(self):
        assert max_abs_error(np.array([1.0, 2.0]), np.array([1.0, 4.0])) == 2.0

    def test_l2_relative(self):
        b = np.array([3.0, 4.0])  # norm 5
        a = b + np.array([0.0, 5.0])
        assert abs(l2_error(a, b) - 1.0) < 1e-12
