"""Tests for the AOT kernel encoding pipeline (Figure 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import (
    EncodedKernelRow,
    encode_kernel_row,
    structural_compress,
)
from repro.core.kernel_matrix import build_kernel_matrix, choose_L
from repro.core.swapping import apply_column_swap
from repro.sptc.metadata import unpack_metadata_words


class TestStructuralCompress:
    def test_keeps_masked_zeros(self):
        # star rows carry zero coefficients that are still data slots
        m = np.array([[0.0, 5.0, 0.0, 0.0]])
        mask = np.array([[True, True, False, False]])
        vals, pos = structural_compress(m, mask)
        assert vals.tolist() == [[0.0, 5.0]]
        assert pos.tolist() == [[0, 1]]

    def test_placeholder_for_single_cell(self):
        m = np.array([[0.0, 0.0, 0.0, 3.0]])
        mask = np.array([[False, False, False, True]])
        vals, pos = structural_compress(m, mask)
        assert vals.tolist() == [[0.0, 3.0]]
        assert pos.tolist() == [[2, 3]]

    def test_empty_group(self):
        m = np.zeros((1, 4))
        mask = np.zeros((1, 4), dtype=bool)
        vals, pos = structural_compress(m, mask)
        assert pos.tolist() == [[0, 1]]

    def test_overfull_mask_rejected(self):
        m = np.zeros((1, 4))
        mask = np.array([[True, True, True, False]])
        with pytest.raises(ValueError, match="not 2:4"):
            structural_compress(m, mask)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            structural_compress(np.zeros((1, 4)), np.zeros((2, 4), dtype=bool))


class TestEncodeKernelRow:
    @given(r=st.integers(1, 8), seed=st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_dense_roundtrip(self, r, seed):
        """Decompressing the encoded row reproduces the swapped matrix."""
        rng = np.random.default_rng(seed)
        row = rng.standard_normal(2 * r + 1)
        enc = encode_kernel_row(row)
        expected = apply_column_swap(build_kernel_matrix(row), choose_L(r))
        assert np.allclose(enc.sparse.to_dense(), expected)
        assert np.allclose(enc.dense_swapped, expected)
        assert np.allclose(enc.dense_unswapped, build_kernel_matrix(row))

    def test_star_row_with_zero_coeffs(self):
        # a star-stencil off-centre row: single non-zero at the middle
        row = np.zeros(7)
        row[3] = 2.5
        enc = encode_kernel_row(row)
        assert np.count_nonzero(enc.sparse.values) == enc.L  # one per matrix row
        # structure is still the full band: metadata identical to a dense row
        enc_dense = encode_kernel_row(np.arange(1.0, 8.0))
        assert np.array_equal(enc.sparse.positions, enc_dense.sparse.positions)

    def test_metadata_uniform_per_radius(self, rng):
        """§3.1.2: predefined extraction rule — metadata depends only on r."""
        e1 = encode_kernel_row(rng.standard_normal(7))
        e2 = encode_kernel_row(rng.standard_normal(7))
        assert np.array_equal(e1.sparse.positions, e2.sparse.positions)
        assert np.array_equal(e1.metadata_words, e2.metadata_words)

    def test_metadata_words_decode(self, rng):
        enc = encode_kernel_row(rng.standard_normal(7))
        decoded = unpack_metadata_words(
            enc.metadata_words, enc.L, enc.width // 2
        )
        assert np.array_equal(decoded, enc.sparse.positions)

    def test_parameter_elements_half_width(self, rng):
        enc = encode_kernel_row(rng.standard_normal(7))
        assert enc.parameter_elements() == enc.L * enc.width // 2

    def test_geometry_fields(self, rng):
        enc = encode_kernel_row(rng.standard_normal(5))  # r=2
        assert enc.radius == 2
        assert enc.L == 6
        assert enc.width == 16
        assert len(enc.permutation) == 16
