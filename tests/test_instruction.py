"""Tests for instruction stream accounting."""

import pytest

from repro.sptc.instruction import InstructionStream, Op


class TestStream:
    def test_emit_and_count(self):
        s = InstructionStream()
        s.emit("mma.sp", "m16n8k16", count=3)
        s.emit("lds", count=2, nbytes=64)
        assert s.count("mma.sp") == 3
        assert s.count("lds") == 2
        assert s.count() == 5
        assert s.bytes_moved("lds") == 64
        assert s.bytes_moved() == 64

    def test_detail_counts(self):
        s = InstructionStream()
        s.emit("mma", "m16n8k16", count=2)
        s.emit("mma", "m16n8k8", count=1)
        assert s.count_detail("mma", "m16n8k16") == 2
        assert s.count_detail("mma", "m16n8k8") == 1

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            InstructionStream().emit("mma", count=-1)

    def test_merge(self):
        a = InstructionStream()
        b = InstructionStream()
        a.emit("mma", count=1)
        b.emit("mma", count=2)
        b.emit("lds", count=4)
        a.merge(b)
        assert a.count("mma") == 3
        assert a.count("lds") == 4

    def test_reset(self):
        s = InstructionStream()
        s.emit("mma")
        s.reset()
        assert s.count() == 0

    def test_equality_by_counts(self):
        a = InstructionStream()
        b = InstructionStream()
        a.emit("mma", "x", count=2)
        b.emit("mma", "y", count=2)  # details differ, class counts equal
        assert a == b

    def test_emit_op(self):
        s = InstructionStream()
        s.emit_op(Op("bar", count=2))
        assert s.count("bar") == 2

    def test_snapshot(self):
        s = InstructionStream()
        s.emit("ialu", count=5)
        assert s.snapshot() == {"ialu": 5}
