"""Tests for the Table-1 cost closed forms — Table 2 asserted to the digit."""

import numpy as np
import pytest

from repro.analysis.costs import (
    convstencil_cost,
    cost_for_spec,
    cudnn_cost,
    drstencil_cost,
    flashfft_cost,
    lorastencil_cost,
    lower_bound_cost,
    spider_cost,
    tcstencil_cost,
)
from repro.analysis.tables import TABLE2_PAPER, table2_rows
from repro.core.cost import spider_cost as core_spider_cost
from repro.stencil import make_box_kernel, make_star_kernel


class TestTable2Exact:
    """Box-2D3R, c = 8: the paper's Table 2, digit for digit."""

    @pytest.mark.parametrize(
        "name,fn",
        [
            ("LowerBound", lower_bound_cost),
            ("ConvStencil", convstencil_cost),
            ("TCStencil", tcstencil_cost),
            ("LoRAStencil", lorastencil_cost),
            ("SPIDER", spider_cost),
        ],
    )
    def test_row(self, name, fn):
        comp, inp, par = fn(10240, 10240, 3, 8).per_point()
        ref_comp, ref_inp, ref_par = TABLE2_PAPER[name]
        assert comp == pytest.approx(ref_comp, abs=0.005)
        assert inp == pytest.approx(ref_inp, abs=0.005)
        assert par == pytest.approx(ref_par, abs=0.005)

    def test_table2_rows_generator(self):
        rows = table2_rows()
        assert len(rows) == 5
        by_name = {r[0]: r[1:] for r in rows}
        assert by_name["SPIDER"] == pytest.approx((56.0, 14.0, 7.0))


class TestSparsityBudget:
    def test_spider_close_to_lower_bound_compute(self):
        # §3.1: SPIDER ≈ LB + the padding tax (56 vs 49 at r=3)
        for r in (1, 2, 3):
            sp = spider_cost(1024, 1024, r).per_point()[0]
            lb = lower_bound_cost(1024, 1024, r).per_point()[0]
            assert lb <= sp < 2.3 * lb

    def test_tcstencil_worst_compute(self):
        for r in (1, 2, 3):
            tc = tcstencil_cost(1024, 1024, r).per_point()[0]
            for other in (convstencil_cost, lorastencil_cost, spider_cost):
                assert tc > other(1024, 1024, r).per_point()[0]

    def test_spider_param_access_best_among_gemm_methods(self):
        for r in (1, 2, 3):
            sp = spider_cost(1024, 1024, r).per_point()[2]
            for other in (convstencil_cost, tcstencil_cost, lorastencil_cost):
                assert sp < other(1024, 1024, r).per_point()[2]


class TestScaling:
    def test_costs_linear_in_grid(self):
        small = spider_cost(512, 512, 2)
        large = spider_cost(1024, 1024, 2)
        assert large.compute_macs == pytest.approx(4 * small.compute_macs)
        assert large.input_elems == pytest.approx(4 * small.input_elems)

    def test_validation(self):
        with pytest.raises(ValueError):
            spider_cost(0, 10, 1)
        with pytest.raises(ValueError):
            tcstencil_cost(10, 10, 8, L=16)
        with pytest.raises(ValueError):
            flashfft_cost(10, 10, 5, seg=9)

    @pytest.mark.parametrize("c", [1, 0, -4])
    def test_spider_rejects_degenerate_tile_side(self, c):
        # a 1-wide tile breaks the ceil(c/8) calibration (and the MAC's
        # minimum output block is 2 columns, see macpool.col_blocks)
        with pytest.raises(ValueError, match="c must be >= 2"):
            core_spider_cost(1024, 1024, 3, c=c)

    def test_spider_accepts_smallest_and_odd_tiles(self):
        # c = 2 is the smallest tile the MAC can issue; non-multiples of 8
        # round up through the ceiling brackets (paper padding convention)
        assert core_spider_cost(1024, 1024, 3, c=2).compute_ops > 0
        assert core_spider_cost(1024, 1024, 3, c=12).compute_ops > 0


class TestCalibratedBrackets:
    """The bracket convention behind the Table-2 row, pinned explicitly.

    The arXiv rendering of §3.1.2's ceiling brackets is ambiguous; the
    implementation resolves it by calibration: the *computation* term uses
    the raw ``(2r+c)/4`` while both *memory* terms use ``⌈(2r+c)/4⌉`` —
    the only combination that reproduces the paper's Box-2D3R, c = 8 row
    (56 / 14 / 7 per point) exactly.  These tests document that choice.
    """

    def test_paper_row_requires_raw_compute_bracket(self):
        A = B = 10240
        r, c = 3, 8
        got = core_spider_cost(A, B, r, c).per_point
        # raw (2r+c)/4 = 3.5 in compute: 256·(1/64)·4·1·3.5 = 56
        assert got.compute_ops == pytest.approx(56.0)
        # a ceiled compute bracket would give 256·(1/64)·4·1·4 = 64 ≠ 56
        assert got.compute_ops != pytest.approx(64.0)

    def test_paper_row_requires_ceiled_memory_bracket(self):
        got = core_spider_cost(10240, 10240, 3, 8).per_point
        # ⌈14/4⌉ = 4 in memory: 32·(1/64)·7·1·4 = 14 and half that for P
        assert got.input_access == pytest.approx(14.0)
        assert got.parameter_access == pytest.approx(7.0)
        # the raw bracket would give 32·(1/64)·7·3.5 = 12.25 ≠ 14
        assert got.input_access != pytest.approx(12.25)

    def test_bracket_split_visible_off_calibration_point(self):
        # at r = 1, c = 8: (2r+c)/4 = 2.5 vs ⌈…⌉ = 3 — the split shows
        got = core_spider_cost(1024, 1024, 1, 8).per_point
        assert got.compute_ops == pytest.approx(256 / 64 * 2 * 2.5)  # 20
        assert got.input_access == pytest.approx(32 / 64 * 3 * 3)  # 4.5


class TestCostForSpec:
    def test_star_nnz_for_cuda_methods(self, rng):
        box = make_box_kernel(2, 2, rng, symmetric=True)
        star = make_star_kernel(2, 2, rng, symmetric=True)
        shape = (1024, 1024)
        # DRStencil skips zero coefficients: star is cheaper
        assert (
            cost_for_spec("DRStencil", star, shape).compute_macs
            < cost_for_spec("DRStencil", box, shape).compute_macs
        )
        # GEMM transformations are value-agnostic: identical cost
        assert (
            cost_for_spec("SPIDER", star, shape).compute_macs
            == cost_for_spec("SPIDER", box, shape).compute_macs
        )

    def test_unknown_method(self, rng):
        with pytest.raises(KeyError):
            cost_for_spec("Unknown", make_box_kernel(2, 1, rng), (64, 64))

    def test_1d_forms(self, rng):
        spec = make_box_kernel(1, 2, rng, symmetric=True)
        for m in (
            "LowerBound",
            "ConvStencil",
            "TCStencil",
            "LoRAStencil",
            "SPIDER",
            "cuDNN",
            "DRStencil",
            "FlashFFTStencil",
        ):
            cost = cost_for_spec(m, spec, (1 << 20,))
            assert cost.compute_macs > 0

    def test_3d_rejected(self, rng):
        with pytest.raises(ValueError):
            cost_for_spec("SPIDER", make_box_kernel(3, 1, rng), (8, 8, 8))


class TestModelFormulas:
    def test_cudnn_value_agnostic(self, rng):
        box = make_box_kernel(2, 2, rng, symmetric=True)
        star = make_star_kernel(2, 2, rng, symmetric=True)
        assert (
            cost_for_spec("cuDNN", box, (512, 512)).compute_macs
            == cost_for_spec("cuDNN", star, (512, 512)).compute_macs
        )

    def test_flashfft_radius_sensitivity(self):
        # overlap-save discard makes larger radii more expensive
        c1 = flashfft_cost(1024, 1024, 1).per_point()[0]
        c3 = flashfft_cost(1024, 1024, 3).per_point()[0]
        assert c3 > c1

    def test_drstencil_nnz_passthrough(self):
        full = drstencil_cost(256, 256, 2, nnz=25)
        star = drstencil_cost(256, 256, 2, nnz=9)
        assert star.compute_macs < full.compute_macs
