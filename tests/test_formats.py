"""Tests for the 2:4 structured sparse format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sptc.formats import (
    GROUP,
    Sparse24Matrix,
    compress_24,
    decompress_24,
    is_24_sparse,
    violating_groups,
)


def random_24_matrix(rng, m, k, density=2):
    """A 2:4-compliant matrix with `density` non-zeros per group."""
    a = np.zeros((m, k))
    for i in range(m):
        for g in range(k // GROUP):
            pos = rng.choice(GROUP, size=density, replace=False)
            a[i, g * GROUP + pos] = rng.standard_normal(density)
    return a


class TestValidation:
    def test_zero_matrix_is_sparse(self):
        assert is_24_sparse(np.zeros((4, 8)))

    def test_dense_matrix_not_sparse(self):
        assert not is_24_sparse(np.ones((2, 8)))

    def test_exact_two_per_group(self, rng):
        assert is_24_sparse(random_24_matrix(rng, 8, 16))

    def test_three_in_group_detected(self):
        a = np.zeros((1, 8))
        a[0, :3] = 1.0
        assert not is_24_sparse(a)
        v = violating_groups(a)
        assert v.tolist() == [[0, 0]]

    def test_non_multiple_of_four_rejected(self):
        with pytest.raises(ValueError):
            is_24_sparse(np.zeros((2, 6)))

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            is_24_sparse(np.zeros(8))


class TestCompressionRoundTrip:
    def test_simple(self, rng):
        a = random_24_matrix(rng, 8, 16)
        v, p = compress_24(a)
        assert v.shape == (8, 8)
        back = decompress_24(v, p, 16)
        assert np.array_equal(back, a)

    def test_single_nonzero_group(self):
        # paper's 0G00 example: value at position 1
        a = np.array([[0.0, 7.0, 0.0, 0.0]])
        v, p = compress_24(a)
        assert v[0, 0] == 7.0 and v[0, 1] == 0.0
        assert p[0, 0] == 1 and p[0, 1] == 2
        assert np.array_equal(decompress_24(v, p, 4), a)

    def test_nonzero_at_last_position(self):
        a = np.array([[0.0, 0.0, 0.0, 7.0]])
        v, p = compress_24(a)
        # placeholder precedes (positions strictly increasing)
        assert v[0, 1] == 7.0 and p[0, 1] == 3
        assert p[0, 0] < p[0, 1]
        assert np.array_equal(decompress_24(v, p, 4), a)

    def test_empty_group(self):
        a = np.zeros((1, 4))
        v, p = compress_24(a)
        assert (v == 0).all()
        assert p[0, 0] < p[0, 1]

    def test_overfull_group_raises(self):
        a = np.ones((1, 4))
        with pytest.raises(ValueError):
            compress_24(a)

    @given(
        m=st.integers(1, 6),
        groups=st.integers(1, 5),
        seed=st.integers(0, 2**32 - 1),
        density=st.integers(0, 2),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, m, groups, seed, density):
        rng = np.random.default_rng(seed)
        a = random_24_matrix(rng, m, groups * GROUP, density) if density else np.zeros(
            (m, groups * GROUP)
        )
        v, p = compress_24(a)
        assert np.array_equal(decompress_24(v, p, groups * GROUP), a)
        # positions strictly increasing within every 2-slot pair
        pr = p.reshape(m, -1, 2)
        assert (pr[..., 0] < pr[..., 1]).all()


class TestSparse24Matrix:
    def test_from_dense_roundtrip(self, rng):
        a = random_24_matrix(rng, 16, 16)
        sp = Sparse24Matrix.from_dense(a)
        assert sp.m == 16 and sp.k == 16 and sp.compressed_k == 8
        assert np.array_equal(sp.to_dense(), a)

    def test_from_dense_rejects_noncompliant(self):
        with pytest.raises(ValueError, match="not 2:4"):
            Sparse24Matrix.from_dense(np.ones((2, 8)))

    def test_storage_halved(self, rng):
        a = random_24_matrix(rng, 8, 32)
        sp = Sparse24Matrix.from_dense(a)
        assert sp.storage_elements() == a.size // 2
        assert sp.metadata_bits() == a.size  # 2 bits per slot, k/2 slots

    def test_invalid_positions_rejected(self):
        with pytest.raises(ValueError):
            Sparse24Matrix(
                np.zeros((1, 2)), np.array([[1, 1]], dtype=np.uint8), 4
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Sparse24Matrix(np.zeros((1, 2)), np.zeros((1, 4), dtype=np.uint8), 4)
