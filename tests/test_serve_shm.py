"""Differential + lifecycle suite for the shared-memory grid transport.

The shm transport moves every grid and result through parent-owned
shared-memory slabs instead of pickled ``multiprocessing`` queues.  That
is only shippable if two contracts are *enforced*:

* **byte-identity** — the same request stream served with
  ``transport="shm"`` must return byte-identical arrays to
  ``transport="queue"``, the thread backend and the synchronous fallback,
  across dims x precision x boundary conditions x steps (the transport
  moves bits; the executor math never changes);
* **lifecycle hygiene** — no ``/dev/shm`` segment outlives ``close()``
  (including after a worker is killed mid-flight), and no
  ``resource_tracker`` warnings fire under any start method (fork,
  forkserver, spawn) — the attach-registration wart of pre-3.13 Python
  must never let a dying worker unlink the parent's live segments.

Plus the allocator-level contracts the transport is built on: free-list
coalescing, geometric growth under a byte cap, queue fallback for
oversized payloads, and generation-tag validation of stale descriptors.
"""

import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.serve import (
    BlockRef,
    ServeRequest,
    SlabAllocator,
    SlabAttachments,
    SlabError,
    StencilService,
    WorkerPool,
    plan_key_for,
)
from repro.serve.workers import (
    _FUSED_KEY_MEMO,
    _FUSED_KEY_MEMO_CAPACITY,
    _fused_spec_and_key,
)
from repro.stencil import (
    BoundaryCondition,
    Grid,
    named_stencil,
    open_loop_stream,
    serving_workloads,
)

#: dims 1/2/3, star+box, radii 1-2 — the differential coverage matrix.
MIXED_SHAPE_IDS = ["wave1d", "heat2d", "blur2d", "Star-2D2R", "heat3d"]

ALL_BCS = [
    BoundaryCondition.ZERO,
    BoundaryCondition.PERIODIC,
    BoundaryCondition.REFLECT,
    BoundaryCondition.NEAREST,
]

STEPS_CYCLE = [1, 2, 3]


def _mixed_stream(n_requests=48, seed=7):
    """Deterministic trace cycling dims x BCs x steps in one pass."""
    workloads = serving_workloads(
        MIXED_SHAPE_IDS,
        size_1d=(96,),
        size_2d=(18, 22),
        size_3d=(7, 8, 9),
        seed=seed,
    )
    trace = list(open_loop_stream(workloads, n_requests, 500.0, seed=seed))
    return [
        (
            r.spec,
            Grid(r.grid.data, ALL_BCS[i % len(ALL_BCS)]),
            STEPS_CYCLE[i % len(STEPS_CYCLE)],
        )
        for i, r in enumerate(trace)
    ]


def _serve(requests, *, backend, transport="shm", precision="exact",
           workers=2, **kw):
    if workers == 0:
        svc_kw = {}
    else:
        svc_kw = {"backend": backend, "transport": transport}
    with StencilService(
        workers=workers,
        precision=precision,
        max_batch_size=4,
        max_wait_s=0.001,
        **svc_kw,
        **kw,
    ) as svc:
        handles = [
            svc.submit(spec, grid, steps=steps)
            for spec, grid, steps in requests
        ]
        svc.drain()
        stats = svc.stats()
    assert stats.telemetry.errors == 0
    return [h.result() for h in handles], stats


# ----------------------------------------------------------------------
# differential: shm x {queue, thread, sync} x dims x precision x BC x steps
# ----------------------------------------------------------------------


@pytest.mark.parametrize("precision", ["exact", "fp16"])
def test_shm_bit_identity_across_backends(precision):
    """One mixed stream (dims x BCs x steps) must serve byte-identically
    through shm-process, queue-process, thread and sync paths."""
    requests = _mixed_stream()
    shm_outs, shm_stats = _serve(
        requests, backend="process", transport="shm", precision=precision
    )
    assert shm_stats.transport == "shm"
    # the whole point: no bulk payload bytes crossed an IPC pipe
    assert shm_stats.telemetry.ipc_payload_bytes == 0
    for backend, transport in [
        ("process", "queue"),
        ("thread", "shm"),  # transport ignored off-process
    ]:
        outs, _ = _serve(
            requests,
            backend=backend,
            transport=transport,
            precision=precision,
        )
        for a, b in zip(shm_outs, outs):
            assert a.dtype == b.dtype
            assert a.shape == b.shape
            assert a.tobytes() == b.tobytes()
    sync_outs, _ = _serve(requests, backend="sync", workers=0,
                          precision=precision)
    for a, b in zip(shm_outs, sync_outs):
        assert a.tobytes() == b.tobytes()


def test_shm_identity_survives_worker_count_and_batch_shape():
    requests = _mixed_stream(n_requests=30, seed=3)
    base, _ = _serve(requests, backend="process", transport="queue",
                     workers=1)
    for workers in (1, 3):
        outs, _ = _serve(
            requests, backend="process", transport="shm", workers=workers
        )
        for a, b in zip(base, outs):
            assert a.tobytes() == b.tobytes()


def test_shm_temporal_fused_mode_matches_queue():
    """steps > 1 in fused temporal mode writes through slab destinations
    (fused GEMM + in-place ring repair) — still transport-invariant."""
    spec = named_stencil("heat2d")
    rng = np.random.default_rng(5)
    requests = [
        (spec, Grid(rng.standard_normal((24, 24))), 3) for _ in range(8)
    ]
    shm_outs, _ = _serve(
        requests, backend="process", transport="shm",
        temporal_mode="fused",
    )
    q_outs, _ = _serve(
        requests, backend="process", transport="queue",
        temporal_mode="fused",
    )
    for a, b in zip(shm_outs, q_outs):
        assert a.tobytes() == b.tobytes()


# ----------------------------------------------------------------------
# fallback, growth, telemetry
# ----------------------------------------------------------------------


def test_oversized_grid_falls_back_to_queue_payload(rng):
    """Grids beyond the slab byte cap must serve correctly (and count as
    piped payload bytes) — capacity is a fast path, never a correctness
    constraint."""
    spec = named_stencil("heat2d")
    grid = Grid.random((64, 64), rng)  # 32 KiB > the 16 KiB cap below
    pool_kw = dict(
        backend="process",
        transport="shm",
        slab_initial_bytes=8 << 10,
        slab_max_bytes=16 << 10,
    )
    pool = WorkerPool(1, max_wait_s=0.001, **pool_kw)
    try:
        req = ServeRequest(
            0,
            spec,
            grid,
            plan_key_for(spec, grid_shape=grid.shape),
            time.monotonic(),
        )
        pool.submit(req)
        out = req.result(timeout=60)
    finally:
        pool.close(join=True)
    with StencilService(workers=2, backend="thread") as svc:
        expected = svc.run(spec, grid, timeout=60)
    assert out.tobytes() == expected.tobytes()


def test_transport_directions_degrade_independently(rng):
    """Under fp16 a result block is half a task block, so a cap between
    the two sizes ships grids pickled but results through the slab —
    each direction degrades on its own, results stay byte-identical."""
    from repro.serve import ServiceTelemetry

    spec = named_stencil("heat2d")
    grids = [Grid.random((48, 48), rng) for _ in range(6)]
    telemetry = ServiceTelemetry()
    # 48x48 f64 grid = 18.4 KB > 12 KB cap; f32 result = 9.2 KB fits
    pool = WorkerPool(
        1,
        backend="process",
        transport="shm",
        slab_initial_bytes=12 << 10,
        slab_max_bytes=12 << 10,
        max_batch_size=1,
        max_wait_s=0.001,
        telemetry=telemetry,
    )
    try:
        reqs = []
        for i, g in enumerate(grids):
            r = ServeRequest(
                i,
                spec,
                g,
                plan_key_for(
                    spec, precision="fp16", grid_shape=g.shape
                ),
                time.monotonic(),
            )
            reqs.append(r)
            pool.submit(r)
        outs = [r.result(timeout=60) for r in reqs]
    finally:
        pool.close(join=True)
    # grids were piped, results were not
    assert telemetry.snapshot().ipc_payload_bytes == sum(
        g.data.nbytes for g in grids
    )
    requests = [(spec, g, 1) for g in grids]
    expected, _ = _serve(requests, backend="process", transport="queue",
                         precision="fp16", workers=1)
    for a, b in zip(outs, expected):
        assert a.dtype == b.dtype
        assert a.tobytes() == b.tobytes()


def test_slab_grows_geometrically_and_reports_bytes(rng):
    spec = named_stencil("heat2d")
    pool = WorkerPool(
        1,
        backend="process",
        transport="shm",
        slab_initial_bytes=4 << 10,  # one 22x22 f64 grid is ~3.9 KiB
        slab_max_bytes=4 << 20,
        max_batch_size=8,
        max_wait_s=0.005,
    )
    try:
        initial = pool.slab_nbytes(0)
        reqs = []
        for i in range(24):
            grid = Grid.random((22, 22), rng)
            r = ServeRequest(
                i,
                spec,
                grid,
                plan_key_for(spec, grid_shape=grid.shape),
                time.monotonic(),
            )
            reqs.append(r)
            pool.submit(r)
        outs = [r.result(timeout=60) for r in reqs]
        grown = pool.slab_nbytes(0)
        # stats plumbing: slab bytes surface through cache_stats
        reported = sum(s.slab_bytes for s in pool.cache_stats())
    finally:
        pool.close(join=True)
    assert all(o.shape == (22, 22) for o in outs)
    # coalesced batches exceed one initial segment -> geometric growth
    assert grown > initial
    assert reported == grown


def test_queue_transport_counts_ipc_bytes_shm_counts_none(rng):
    spec = named_stencil("heat2d")
    requests = [
        (spec, Grid.random((16, 16), rng), 1) for _ in range(10)
    ]
    grid_bytes = sum(g.data.nbytes for _, g, _ in requests)
    _, q_stats = _serve(requests, backend="process", transport="queue")
    # grids out + results back, both pickled over pipes
    assert q_stats.telemetry.ipc_payload_bytes >= 2 * grid_bytes
    assert q_stats.telemetry.ipc_bytes_per_request > 0
    _, s_stats = _serve(requests, backend="process", transport="shm")
    assert s_stats.telemetry.ipc_payload_bytes == 0
    _, t_stats = _serve(requests, backend="thread")
    assert t_stats.telemetry.ipc_payload_bytes == 0


def test_queue_wait_telemetry_is_offset_free_and_sane(rng):
    """Queue-wait/latency math must mix no cross-process clocks: every
    reading is anchored in the parent's monotonic domain, so waits are
    non-negative and bounded by latency even if worker clocks drifted."""
    spec = named_stencil("heat2d")
    requests = [
        (spec, Grid.random((16, 16), rng), 1) for _ in range(20)
    ]
    _, stats = _serve(requests, backend="process", transport="shm")
    t = stats.telemetry
    assert t.queue_wait_ms["p50"] >= 0.0
    assert t.latency_ms["max"] >= t.queue_wait_ms["max"]
    assert t.latency_ms["p50"] >= t.service_ms["p50"] * 0.0  # well-formed


def test_transport_validation_and_stats_tagging(rng):
    with pytest.raises(ValueError, match="transport"):
        StencilService(workers=1, backend="process", transport="carrier")
    with pytest.raises(ValueError, match="transport"):
        WorkerPool(1, transport="carrier")
    spec = named_stencil("heat2d")
    with StencilService(workers=1, backend="process",
                        transport="queue") as svc:
        svc.run(spec, Grid.random((12, 12), rng), timeout=60)
        assert svc.stats().transport == "queue"
    with StencilService(workers=1, backend="thread") as svc:
        svc.run(spec, Grid.random((12, 12), rng), timeout=60)
        assert svc.stats().transport == "local"


# ----------------------------------------------------------------------
# allocator unit contracts
# ----------------------------------------------------------------------


def _drain_and_close(alloc):
    names = alloc.segment_names()
    alloc.close()
    for n in names:
        assert not os.path.exists(f"/dev/shm/{n}")


def test_allocator_alloc_free_coalesce_roundtrip():
    alloc = SlabAllocator(initial_bytes=1 << 14, max_bytes=1 << 16)
    try:
        blocks = [alloc.alloc(1024) for _ in range(8)]
        assert all(b is not None for b in blocks)
        # distinct, non-overlapping data regions
        spans = sorted((b.offset, b.offset + b.nbytes) for b in blocks)
        for (lo1, hi1), (lo2, hi2) in zip(spans, spans[1:]):
            assert hi1 <= lo2
        for b in blocks:
            alloc.free(b)
        # coalesced back: a segment-filling alloc succeeds again
        big = alloc.alloc((1 << 14) - 64 - 64)
        assert big is not None
        alloc.free(big)
    finally:
        _drain_and_close(alloc)


def test_allocator_grows_then_caps_then_falls_back():
    alloc = SlabAllocator(initial_bytes=4 << 10, max_bytes=16 << 10)
    try:
        a = alloc.alloc(3 << 10)
        assert a is not None and alloc.nbytes == 4 << 10
        b = alloc.alloc(3 << 10)  # second segment (geometric growth)
        assert b is not None and alloc.nbytes > 4 << 10
        assert alloc.alloc(1 << 20) is None  # over the cap -> fallback cue
        alloc.free(a)
        alloc.free(b)
    finally:
        _drain_and_close(alloc)


def test_generation_tags_catch_stale_and_double_use():
    alloc = SlabAllocator(initial_bytes=1 << 14, max_bytes=1 << 14)
    att = SlabAttachments()
    try:
        block = alloc.alloc(8 * 16)
        arr = np.arange(16, dtype=np.float64)
        alloc.write_batch(
            BlockRef(block.segment, block.offset, 8 * 16, block.generation),
            [arr],
        )
        view = att.view(block, (16,), np.float64)
        assert view.tobytes() == arr.tobytes()
        del view
        alloc.free(block)
        # stale descriptor after free: poisoned generation is detected
        with pytest.raises(SlabError, match="generation"):
            att.view(block, (16,), np.float64)
        with pytest.raises(SlabError, match="generation"):
            alloc.buffer(block)
        # double free is an explicit protocol error too
        with pytest.raises(SlabError, match="free"):
            alloc.free(block)
        # recycled block: new generation invalidates the old descriptor
        block2 = alloc.alloc(8 * 16)
        assert block2.generation != block.generation
        with pytest.raises(SlabError, match="generation"):
            att.view(block, (16,), np.float64)
        alloc.free(block2)
    finally:
        att.close()
        _drain_and_close(alloc)


def test_attach_unknown_segment_raises_slab_error():
    att = SlabAttachments()
    try:
        with pytest.raises(SlabError, match="unlinked"):
            att.view(BlockRef("psm_gone_gone", 64, 64, 1), (8,), np.float64)
    finally:
        att.close()


# ----------------------------------------------------------------------
# lifecycle: unlink on close, kill, start methods, tracker hygiene
# ----------------------------------------------------------------------


def _pool_segment_names(pool):
    names = []
    for slabs in pool._slabs:
        if slabs is not None:
            names += slabs[0].segment_names() + slabs[1].segment_names()
    return names


def test_no_leaked_segments_after_close(rng):
    spec = named_stencil("heat2d")
    pool = WorkerPool(2, backend="process", transport="shm",
                      max_wait_s=0.001)
    reqs = []
    for i in range(8):
        grid = Grid.random((14, 14), rng)
        r = ServeRequest(
            i,
            spec,
            grid,
            plan_key_for(spec, grid_shape=grid.shape),
            time.monotonic(),
        )
        reqs.append(r)
        pool.submit(r)
    for r in reqs:
        r.result(timeout=60)
    names = _pool_segment_names(pool)
    assert names, "shm transport should have created segments"
    assert all(os.path.exists(f"/dev/shm/{n}") for n in names)
    pool.close(join=True)
    for n in names:
        assert not os.path.exists(f"/dev/shm/{n}"), f"leaked segment {n}"


def test_no_leaked_segments_after_worker_kill(rng):
    """A worker killed mid-flight (OOM stand-in) must not strand segments
    — close() after the reap still unlinks everything, including the
    fresh slab pair a supervised respawn may have allocated; the pending
    request is served anyway (retry / inline fallback)."""
    spec = named_stencil("heat2d")
    before = set(os.listdir("/dev/shm"))
    pool = WorkerPool(1, backend="process", transport="shm",
                      max_wait_s=10.0)
    grid = Grid.random((12, 12), rng)
    req = ServeRequest(
        0, spec, grid, plan_key_for(spec, grid_shape=grid.shape), 0.0
    )
    pool.workers[0].terminate()
    pool.workers[0].join()
    pool.submit(req)
    pool.close(join=True)
    assert req.done() and not req.failed
    names = _pool_segment_names(pool)
    for n in names:
        assert not os.path.exists(f"/dev/shm/{n}"), f"leaked segment {n}"
    # ... and nothing new overall — covers slab pairs a supervised
    # respawn allocated and then swapped out before close()
    leftovers = set(os.listdir("/dev/shm")) - before
    assert not leftovers, f"leaked respawn segments {leftovers}"


_LIFECYCLE_SCRIPT = """
import warnings
warnings.simplefilter("error")  # any resource_tracker warning is fatal
import numpy as np
from repro.serve import StencilService
from repro.stencil import Grid, named_stencil

spec = named_stencil("heat2d")
rng = np.random.default_rng(0)
with StencilService(workers=2, backend="process", transport="shm") as svc:
    handles = [
        svc.submit(spec, Grid.random((16, 16), rng)) for _ in range(12)
    ]
    svc.drain()
    outs = [h.result(timeout=60) for h in handles]
assert all(o.shape == (16, 16) for o in outs)
print("SERVED-OK")
"""


@pytest.mark.parametrize("start_method", ["spawn", "forkserver"])
def test_shm_clean_under_start_method(start_method):
    """Full service lifecycle under non-fork start methods, with warnings
    promoted to errors: no resource_tracker 'leaked shared_memory'
    complaints, no KeyError tracebacks from tracker double-accounting,
    and a clean exit."""
    env = dict(os.environ)
    env["REPRO_MP_START_METHOD"] = start_method
    env["PYTHONPATH"] = (
        os.path.join(os.path.dirname(__file__), "..", "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    proc = subprocess.run(
        [sys.executable, "-W", "error::UserWarning", "-c",
         _LIFECYCLE_SCRIPT],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "SERVED-OK" in proc.stdout
    assert "leaked shared_memory" not in proc.stderr
    assert "resource_tracker" not in proc.stderr
    assert "Traceback" not in proc.stderr


# ----------------------------------------------------------------------
# satellite: fused-key memo evicts LRU, not wholesale
# ----------------------------------------------------------------------


def test_fused_key_memo_evicts_lru_not_wholesale(monkeypatch):
    import repro.serve.workers as workers_mod

    monkeypatch.setattr(workers_mod, "_FUSED_KEY_MEMO_CAPACITY", 4)
    _FUSED_KEY_MEMO.clear()
    rng = np.random.default_rng(0)
    specs = []
    from repro.stencil.spec import StencilSpec

    base = named_stencil("heat1d")
    for i in range(6):
        w = base.weights.copy()
        w[0] += (i + 1) * 1e-3  # distinct kernels -> distinct keys
        specs.append(StencilSpec(base.shape, base.dims, base.radius, w))
    keys = [
        plan_key_for(s, grid_shape=(64,), steps=2) for s in specs
    ]
    for s, k in zip(specs, keys):
        _fused_spec_and_key(k, s)
    assert len(_FUSED_KEY_MEMO) == 4  # bounded, not cleared to zero
    # the two oldest were evicted, the newest four survive
    assert keys[0] not in _FUSED_KEY_MEMO
    assert keys[1] not in _FUSED_KEY_MEMO
    assert all(k in _FUSED_KEY_MEMO for k in keys[2:])
    # a hit refreshes recency: touch keys[2], insert one more, and the
    # eviction victim is keys[3] (the new LRU), not keys[2]
    _fused_spec_and_key(keys[2], specs[2])
    w = base.weights.copy()
    w[0] += 7e-2
    s7 = StencilSpec(base.shape, base.dims, base.radius, w)
    k7 = plan_key_for(s7, grid_shape=(64,), steps=2)
    _fused_spec_and_key(k7, s7)
    assert keys[2] in _FUSED_KEY_MEMO
    assert keys[3] not in _FUSED_KEY_MEMO
    _FUSED_KEY_MEMO.clear()


def test_fused_key_memo_default_capacity_unchanged():
    assert _FUSED_KEY_MEMO_CAPACITY == 512
