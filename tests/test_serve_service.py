"""StencilService end-to-end: sync fallback, sharded workers, telemetry,
error routing, and the 1,000-request mixed-spec acceptance run."""

import numpy as np
import pytest

from repro import Spider, StencilService
from repro.stencil import (
    Grid,
    closed_loop_stream,
    named_stencil,
    open_loop_stream,
    serving_workloads,
)


def _reference_outputs(requests):
    """Per-request Spider.run oracle (one compiled Spider per workload)."""
    spiders = {}
    outs = []
    for r in requests:
        sp = spiders.get(id(r.workload))
        if sp is None:
            sp = spiders[id(r.workload)] = Spider(r.spec)
        outs.append(sp.run(r.grid))
    return outs


# ----------------------------------------------------------------------
# synchronous fallback (workers=0)
# ----------------------------------------------------------------------


def test_sync_fallback_matches_spider(rng):
    spec = named_stencil("heat2d")
    grid = Grid.random((40, 40), rng)
    with StencilService(workers=0) as svc:
        out = svc.run(spec, grid)
        assert np.array_equal(out, Spider(spec).run(grid))
        handle = svc.submit(spec, Grid.random((40, 40), rng))
        assert handle.done()  # sync path resolves inline
        st = svc.stats()
    assert st.workers == 0
    assert st.submitted == 2
    assert st.telemetry.requests == 2
    assert st.cache.hits == 1 and st.cache.misses == 1


def test_sync_fallback_accepts_raw_arrays(rng):
    spec = named_stencil("blur2d")
    arr = rng.normal(size=(24, 24))
    with StencilService(workers=0) as svc:
        out = svc.run(spec, arr)
    assert np.array_equal(out, Spider(spec).run(Grid(arr)))


def test_error_propagates_without_killing_service(rng):
    spec2d = named_stencil("heat2d")
    bad = Grid.random((64,), rng)  # 1D grid for a 2D stencil
    good = Grid.random((16, 16), rng)
    for workers in (0, 2):
        with StencilService(workers=workers) as svc:
            h_bad = svc.submit(spec2d, bad)
            with pytest.raises(ValueError):
                h_bad.result(timeout=10)
            assert h_bad.failed
            out = svc.submit(spec2d, good).result(timeout=10)
            assert np.array_equal(out, Spider(spec2d).run(good))
            assert svc.stats().telemetry.errors == 1


# ----------------------------------------------------------------------
# threaded service
# ----------------------------------------------------------------------


def test_threaded_results_match_reference():
    wls = serving_workloads(seed=5)
    reqs = list(closed_loop_stream(wls, 120, seed=6))
    refs = _reference_outputs(reqs)
    with StencilService(workers=4, max_batch_size=8, max_wait_s=0.002) as svc:
        handles = svc.submit_many((r.spec, r.grid) for r in reqs)
        svc.drain(timeout=120)
        st = svc.stats()
    for h, ref in zip(handles, refs):
        assert np.array_equal(h.result(), ref)
    assert st.telemetry.requests == 120
    assert st.telemetry.errors == 0
    assert st.inflight == 0


def test_batching_actually_fuses():
    spec = named_stencil("heat2d")
    rng = np.random.default_rng(0)
    grids = [Grid.random((16, 16), rng) for _ in range(32)]
    with StencilService(workers=1, max_batch_size=8, max_wait_s=0.2) as svc:
        svc.submit_many((spec, g) for g in grids)
        svc.drain(timeout=120)
        st = svc.stats()
    # a burst of 32 same-spec requests must not run as 32 singletons
    assert st.telemetry.batches < 32
    assert st.telemetry.occupancy["mean"] >= 2.0
    assert st.telemetry.occupancy["max"] == 8.0


def test_batched_results_do_not_pin_the_fused_batch_array():
    spec = named_stencil("heat2d")
    rng = np.random.default_rng(1)
    grids = [Grid.random((16, 16), rng) for _ in range(8)]
    with StencilService(workers=1, max_batch_size=8, max_wait_s=0.2) as svc:
        handles = svc.submit_many((spec, g) for g in grids)
        svc.drain(timeout=120)
        assert svc.stats().telemetry.occupancy["max"] == 8.0  # fused
    for h in handles:
        out = h.result()
        assert out.base is None  # owns its data, not a view of the batch


def test_inflight_sweep_does_not_retain_behind_slow_head():
    """Completed requests behind an unresolved head are swept periodically."""
    svc = StencilService(workers=0)
    spec = named_stencil("heat2d")
    slow = svc.submit(spec, Grid.random((8, 8)))
    slow._event.clear()  # simulate a head that never completes
    for _ in range(600):
        svc.run(spec, Grid.random((8, 8)))
    assert len(svc._inflight) < 400  # swept despite the stuck head
    slow._event.set()
    svc.close()


def test_spec_affinity_keeps_worker_caches_disjoint():
    wls = serving_workloads(seed=5)
    reqs = list(closed_loop_stream(wls, 200, seed=8))
    with StencilService(workers=4, max_batch_size=8, max_wait_s=0.002) as svc:
        svc.submit_many((r.spec, r.grid) for r in reqs)
        svc.drain(timeout=120)
        st = svc.stats()
    # every distinct plan compiles on exactly one worker: total misses ==
    # number of distinct plan keys (here: one per workload)
    assert st.cache.misses == len(wls)


def test_open_loop_trace_serves(rng):
    wls = serving_workloads(["heat2d", "blur2d"], size_2d=(16, 16), seed=5)
    reqs = list(open_loop_stream(wls, 30, rate_rps=5000.0, seed=9))
    assert all(
        a.arrival_s <= b.arrival_s for a, b in zip(reqs, reqs[1:])
    )
    refs = _reference_outputs(reqs)
    with StencilService(workers=2) as svc:
        handles = svc.submit_many((r.spec, r.grid) for r in reqs)
        svc.drain(timeout=120)
    for h, ref in zip(handles, refs):
        assert np.array_equal(h.result(), ref)


def test_drain_empty_and_closed_lifecycle():
    svc = StencilService(workers=2)
    svc.drain()  # nothing in flight: returns immediately
    svc.close()
    svc.close()  # idempotent
    with pytest.raises(RuntimeError):
        svc.submit(named_stencil("heat2d"), Grid.random((8, 8)))


def test_service_parameter_validation():
    with pytest.raises(ValueError):
        StencilService(workers=-1)


def test_format_report_mentions_key_stats():
    with StencilService(workers=0) as svc:
        svc.run(named_stencil("heat2d"), Grid.random((16, 16)))
        text = svc.format_report()
    assert "plan cache" in text
    assert "latency (ms)" in text
    assert "batch occupancy" in text


# ----------------------------------------------------------------------
# acceptance: 1,000 mixed-spec requests through >= 4 workers
# ----------------------------------------------------------------------


def test_thousand_mixed_requests_bit_identical_and_cached():
    wls = serving_workloads(
        ["heat2d", "blur2d", "wave1d", "Star-2D2R", "heat3d"],
        size_2d=(24, 24),
        size_1d=(1024,),
        size_3d=(10, 10, 10),
        seed=11,
    )
    reqs = list(closed_loop_stream(wls, 1000, seed=12))
    refs = _reference_outputs(reqs)
    with StencilService(workers=4, max_batch_size=8, max_wait_s=0.002) as svc:
        handles = svc.submit_many((r.spec, r.grid) for r in reqs)
        svc.drain(timeout=600)
        st = svc.stats()
    mismatches = sum(
        0 if np.array_equal(h.result(), ref) else 1
        for h, ref in zip(handles, refs)
    )
    assert mismatches == 0
    assert st.telemetry.requests == 1000
    assert st.telemetry.errors == 0
    assert st.workers == 4
    assert st.cache_hit_rate >= 0.90, st.cache
