"""Cross-backend differential suite for temporal fusion in the serving path.

The contract under test: ``submit(spec, grid, steps=t)`` executes one
in-worker temporal super-sweep whose result is **byte-identical** to ``t``
sequential ``submit()`` round-trips (re-wrapping each result with the
grid's boundary condition), on every backend — thread workers, process
workers, and the synchronous fallback — across dimensionalities,
precisions and boundary conditions.  The opt-in ``temporal_mode="fused"``
relaxes that to: byte-identical on the boundary ring, last-ulp-exact in
the interior.  The suite also pins the sweep-aware plumbing: requests
coalesce by ``(plan, steps)``, the sweep-aware :class:`PlanKey` and
:class:`PlanRecipe` round-trip losslessly, and telemetry counts sweeps.
"""

import numpy as np
import pytest

from repro.core import PlanRecipe, SpiderVariant, build_compile_plan
from repro.core.temporal import fuse_kernel
from repro.gpu.device import A100_80GB_PCIE
from repro.serve import (
    BatchQueue,
    PlanKey,
    ServeRequest,
    StencilService,
    format_service_report,
    plan_key_for,
    spec_fingerprint,
)
from repro.stencil import BoundaryCondition, Grid, named_stencil

#: dims 1/2/3, star + box footprints, radii 1-2.
TEMPORAL_SHAPES = [
    ("wave1d", (64,)),
    ("heat2d", (20, 24)),
    ("blur2d", (18, 22)),
    ("heat3d", (9, 10, 11)),
]

ALL_BCS = [
    BoundaryCondition.ZERO,
    BoundaryCondition.PERIODIC,
    BoundaryCondition.REFLECT,
    BoundaryCondition.NEAREST,
]

#: (backend, workers) choices: the sync fallback is workers == 0.
BACKENDS = [("thread", 2), ("process", 2), ("thread", 0)]


def _temporal_requests(seed=7):
    """Mixed-dims trace of (spec, grid, steps) cycling every BC."""
    rng = np.random.default_rng(seed)
    out = []
    for i, (name, shape) in enumerate(TEMPORAL_SHAPES):
        spec = named_stencil(name)
        for steps in (2, 3):
            bc = ALL_BCS[(i + steps) % len(ALL_BCS)]
            if bc is BoundaryCondition.REFLECT and min(shape) <= spec.radius:
                bc = BoundaryCondition.ZERO
            out.append((spec, Grid(rng.standard_normal(shape), bc), steps))
    return out


def _roundtrip(svc, spec, grid, steps):
    """The per-sweep path: ``steps`` sequential submit round-trips.

    Returns the final sweep's raw result array (float32 under fp16 —
    only *intermediate* results get re-wrapped into float64 grids, in
    both this path and the in-worker super-sweep).
    """
    cur, out = grid, None
    for _ in range(steps):
        out = svc.run(spec, cur, timeout=120)
        cur = Grid(out, grid.bc)
    return out


# ----------------------------------------------------------------------
# differential: super-sweep vs sequential round-trips, byte-identical
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend,workers", BACKENDS)
@pytest.mark.parametrize("precision", ["exact", "fp16"])
def test_steps_byte_identical_to_roundtrips(backend, workers, precision):
    requests = _temporal_requests()
    with StencilService(
        workers=workers,
        backend=backend,
        precision=precision,
        max_batch_size=4,
        max_wait_s=0.001,
    ) as svc:
        fused = [
            svc.submit(spec, grid.copy(), steps=steps)
            for spec, grid, steps in requests
        ]
        svc.drain(timeout=300)
        fused_outs = [h.result() for h in fused]
        seq_outs = [
            _roundtrip(svc, spec, grid, steps)
            for spec, grid, steps in requests
        ]
        stats = svc.stats()
    assert stats.telemetry.errors == 0
    for (spec, grid, steps), a, b in zip(requests, fused_outs, seq_outs):
        assert a.shape == grid.shape
        assert a.tobytes() == b.tobytes(), (spec.name, grid.bc, steps)


def test_super_sweep_identity_survives_worker_count():
    """Sharding differently cannot perturb multi-sweep results."""
    requests = _temporal_requests(seed=3)
    outs = {}
    for backend, workers in (("thread", 1), ("thread", 3), ("process", 2)):
        with StencilService(
            workers=workers, backend=backend, max_wait_s=0.001
        ) as svc:
            handles = [
                svc.submit(spec, grid.copy(), steps=steps)
                for spec, grid, steps in requests
            ]
            svc.drain(timeout=300)
            outs[(backend, workers)] = [h.result() for h in handles]
    base = outs[("thread", 1)]
    for key, other in outs.items():
        for a, b in zip(base, other):
            assert a.tobytes() == b.tobytes(), key


# ----------------------------------------------------------------------
# fused temporal mode: exact ring, ulp-tight interior
# ----------------------------------------------------------------------


@pytest.mark.parametrize("workers", [0, 2])
def test_fused_mode_ring_exact_interior_ulp(workers, rng):
    cases = [
        ("wave1d", (64,), 2),
        ("heat2d", (26, 30), 3),
        ("heat3d", (13, 14, 15), 2),
    ]
    with StencilService(
        workers=workers, temporal_mode="fused", max_wait_s=0.001
    ) as svc:
        for name, shape, steps in cases:
            spec = named_stencil(name)
            grid = Grid(rng.standard_normal(shape))
            fused = svc.run(spec, grid.copy(), steps=steps, timeout=120)
            seq = _roundtrip(svc, spec, grid, steps)
            ring = steps * spec.radius
            interior = tuple(slice(ring, -ring) for _ in shape)
            mask = np.zeros(shape, dtype=bool)
            mask[interior] = True
            diff = fused != seq
            # the boundary ring is byte-identical ...
            assert not (diff & ~mask).any(), name
            # ... and the interior deviates by at most a few ulps
            np.testing.assert_allclose(fused, seq, rtol=0, atol=1e-12)


def test_fused_mode_falls_back_exact_for_non_dirichlet(rng):
    """PERIODIC grids cannot run the fused super-kernel; the fused mode
    must still return byte-identical results via exact chaining."""
    spec = named_stencil("heat2d")
    grid = Grid(rng.standard_normal((24, 28)), BoundaryCondition.PERIODIC)
    with StencilService(
        workers=1, temporal_mode="fused", max_wait_s=0.001
    ) as svc:
        fused = svc.run(spec, grid.copy(), steps=3, timeout=120)
        seq = _roundtrip(svc, spec, grid, 3)
    assert fused.tobytes() == seq.tobytes()


def test_fused_mode_small_domain_falls_back_exact(rng):
    """A domain without an uncontaminated interior steps plainly —
    byte-identical, not an error."""
    spec = named_stencil("heat2d")
    grid = Grid(rng.standard_normal((8, 8)))  # min side <= 2 * ring
    with StencilService(
        workers=1, temporal_mode="fused", max_wait_s=0.001
    ) as svc:
        fused = svc.run(spec, grid.copy(), steps=4, timeout=120)
        seq = _roundtrip(svc, spec, grid, 4)
    assert fused.tobytes() == seq.tobytes()


def test_fused_mode_caches_fused_plan_under_own_fingerprint(rng):
    """The fused super-kernel compiles once (its own cache entry), and the
    plain plan compiles once next to it — repeats are pure cache hits."""
    spec = named_stencil("heat2d")
    with StencilService(
        workers=1, temporal_mode="fused", max_wait_s=0.001
    ) as svc:
        for _ in range(4):
            svc.run(spec, Grid(rng.standard_normal((26, 30))), steps=2,
                    timeout=120)
        stats = svc.stats()
    assert stats.telemetry.errors == 0
    # exactly two compiles pool-wide: the fused plan + the plain plan
    # (the boundary-strip shapes reuse the plain plan's workspace arena)
    assert stats.cache.misses == 2
    assert stats.cache.hits > 0


# ----------------------------------------------------------------------
# sweep-aware coalescing and plan keys
# ----------------------------------------------------------------------


def test_distinct_steps_never_share_a_batch(rng):
    """Requests differing only in ``steps`` must coalesce separately."""
    spec = named_stencil("heat2d")
    grid = Grid.random((12, 12), rng)
    q = BatchQueue(max_batch_size=8, max_wait_s=0.0)
    reqs = []
    for i, steps in enumerate([1, 2, 1, 2, 3]):
        key = plan_key_for(spec, grid_shape=grid.shape, steps=steps)
        reqs.append(ServeRequest(i, spec, grid, key, 0.0))
        assert reqs[-1].steps == steps  # derived from the sweep-aware key
        q.put(reqs[-1])
    batches = [q.get_batch() for _ in range(3)]
    got = sorted(tuple(r.req_id for r in b) for b in batches)
    assert got == [(0, 2), (1, 3), (4,)]
    for b in batches:
        assert len({r.key.steps for r in b}) == 1


def test_plan_key_steps_identity_and_routing():
    spec = named_stencil("blur2d")
    base = plan_key_for(spec, grid_shape=(32, 32))
    swept = plan_key_for(spec, grid_shape=(32, 32), steps=4)
    assert base.steps == 1 and swept.steps == 4
    assert base != swept  # distinct cache/coalescing identity ...
    assert swept.base() == base
    assert base.base() is base
    # ... but identical routing: super-sweeps share their plain plan's shard
    assert base.routing_hash() == swept.routing_hash()
    with pytest.raises(ValueError):
        plan_key_for(spec, grid_shape=(32, 32), steps=0)


def test_submit_validates_steps(rng):
    with StencilService(workers=0) as svc:
        with pytest.raises(ValueError):
            svc.submit(named_stencil("heat2d"), Grid.random((8, 8), rng),
                       steps=0)
    with pytest.raises(ValueError):
        StencilService(workers=1, temporal_mode="bogus")


def test_telemetry_counts_sweeps(rng):
    spec = named_stencil("heat2d")
    with StencilService(workers=2, max_wait_s=0.001) as svc:
        for steps in (1, 2, 5):
            svc.submit(spec, Grid.random((12, 12), rng), steps=steps)
        svc.drain(timeout=120)
        stats = svc.stats()
    assert stats.telemetry.requests == 3
    assert stats.telemetry.sweeps == 8
    assert "sweeps advanced" in format_service_report(stats)


# ----------------------------------------------------------------------
# fuse_kernel steps=1 cache regression (satellite bugfix)
# ----------------------------------------------------------------------


def test_fuse_kernel_one_step_preserves_fingerprint_and_cache_hits():
    star = named_stencil("heat2d")  # star footprint
    fused1 = fuse_kernel(star, 1)
    assert fused1 is star  # no BOX relabeling, no weight copy
    assert spec_fingerprint(fused1) == spec_fingerprint(star)
    # a steps=1 recipe and a plain recipe build the same plan key
    assert plan_key_for(fused1, grid_shape=(16, 16)) == plan_key_for(
        star, grid_shape=(16, 16)
    )


# ----------------------------------------------------------------------
# sweep-aware serialization round-trips
# ----------------------------------------------------------------------


def test_plan_key_dict_roundtrip_with_steps():
    key = plan_key_for(named_stencil("heat2d"), grid_shape=(20, 24), steps=3)
    again = PlanKey.from_dict(key.to_dict())
    assert again == key
    assert again.steps == 3
    assert again.routing_hash() == key.routing_hash()
    # pre-sweep-aware dicts (no "steps") load as plain keys
    legacy = {k: v for k, v in key.to_dict().items() if k != "steps"}
    assert PlanKey.from_dict(legacy) == key.base()


def test_plan_recipe_steps_builds_fused_plan(rng):
    spec = named_stencil("heat2d")
    recipe = PlanRecipe.from_dict(
        PlanRecipe(
            spec=spec,
            precision="exact",
            variant=SpiderVariant.SPTC_CO,
            device=A100_80GB_PCIE,
            steps=2,
        ).to_dict()
    )
    assert recipe.steps == 2
    plan = recipe.build()
    direct = build_compile_plan(fuse_kernel(spec, 2))
    assert plan.spec == direct.spec
    g = Grid.random((26, 30), rng)
    assert plan.executor.run(g).tobytes() == direct.executor.run(g).tobytes()
    with pytest.raises(ValueError):
        PlanRecipe(
            spec=spec,
            precision="exact",
            variant=SpiderVariant.SPTC_CO,
            device=A100_80GB_PCIE,
            steps=0,
        )
