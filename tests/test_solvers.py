"""Tests for the iterative solver drivers."""

import numpy as np
import pytest

from repro import Grid, Spider, named_stencil
from repro.stencil import ShapeType, StencilSpec
from repro.stencil import multigrid, poisson_operator_spec
from repro.stencil.solvers import (
    PlanExecutor,
    default_plan_executor,
    jacobi_poisson,
    power_iteration,
    richardson,
)


def _poisson_residual(u: np.ndarray, rhs: np.ndarray) -> float:
    """||-lap(u) - rhs|| / ||rhs|| with unit spacing, zero BC."""
    lap = (
        -2 * u.ndim * u
        + sum(
            np.roll(np.pad(u, 1), s, axis=a)[
                tuple(slice(1, -1) for _ in range(u.ndim))
            ]
            for a in range(u.ndim)
            for s in (-1, 1)
        )
    )
    return float(np.linalg.norm(-lap - rhs) / np.linalg.norm(rhs))


class TestJacobi:
    def test_solves_2d_poisson(self, rng):
        rhs = rng.standard_normal((24, 24))
        res = jacobi_poisson(rhs, tol=1e-10, max_iter=20000)
        assert res.converged
        assert _poisson_residual(res.solution, rhs) < 1e-6

    def test_solves_1d(self, rng):
        rhs = rng.standard_normal(32)
        res = jacobi_poisson(rhs, tol=1e-10, max_iter=20000)
        assert res.converged

    def test_spider_executor_matches_reference(self, rng):
        rhs = rng.standard_normal((16, 16))
        compiled = {}

        def spider_exec(spec, grid):
            sp = compiled.setdefault(spec.weights.tobytes(), Spider(spec))
            return sp.run(grid)

        a = jacobi_poisson(rhs, tol=1e-9, max_iter=5000)
        b = jacobi_poisson(rhs, executor=spider_exec, tol=1e-9, max_iter=5000)
        assert b.converged == a.converged
        assert np.allclose(a.solution, b.solution, atol=1e-7)

    def test_history_recorded_and_monotone_tail(self, rng):
        rhs = rng.standard_normal((12, 12))
        res = jacobi_poisson(rhs, tol=1e-12, max_iter=400, record_history=True)
        assert len(res.residual_history) == res.iterations
        tail = res.residual_history[50:]
        assert all(b <= a * 1.001 for a, b in zip(tail, tail[1:]))

    def test_non_convergence_reported(self, rng):
        rhs = rng.standard_normal((24, 24))
        res = jacobi_poisson(rhs, tol=1e-14, max_iter=3)
        assert not res.converged
        assert res.iterations == 3

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            jacobi_poisson(np.zeros((2, 2, 2, 2)))


class TestRichardson:
    def test_matches_jacobi_fixed_point(self, rng):
        # -Laplacian operator as a stencil spec
        w = np.zeros((3, 3))
        w[1, 1] = 4.0
        w[0, 1] = w[2, 1] = w[1, 0] = w[1, 2] = -1.0
        op = StencilSpec(ShapeType.STAR, 2, 1, w, "neg_laplace")
        rhs = rng.standard_normal((16, 16))
        res = richardson(rhs, op, omega=0.2, tol=1e-10, max_iter=50000)
        assert res.converged
        assert _poisson_residual(res.solution, rhs) < 1e-6

    def test_omega_validation(self, rng):
        op = named_stencil("jacobi2d")
        with pytest.raises(ValueError):
            richardson(np.zeros((4, 4)), op, omega=0.0)


class TestPowerIteration:
    def test_jacobi_spectral_radius(self):
        """Dominant eigenvalue of neighbour averaging on an n-grid with
        zero BC is cos(pi/(n+1)) in 1D."""
        spec = named_stencil("jacobi2d")
        n = 15
        lam = power_iteration(spec, (n, n), iters=400)
        expected = np.cos(np.pi / (n + 1))  # 2D: same as 1D for this op
        assert lam == pytest.approx(expected, abs=1e-3)
        assert lam < 1.0  # the smoother is contractive

    def test_spider_executor_agrees(self):
        spec = named_stencil("jacobi2d")
        sp = Spider(spec)
        lam_ref = power_iteration(spec, (12, 12), iters=200)
        lam_spider = power_iteration(
            spec, (12, 12), iters=200, executor=lambda s, g: sp.run(g)
        )
        assert lam_spider == pytest.approx(lam_ref, abs=1e-10)

    def test_zero_operator(self):
        w = np.zeros((3, 3))
        spec = StencilSpec(ShapeType.BOX, 2, 1, w)
        assert power_iteration(spec, (8, 8), iters=3) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            power_iteration(named_stencil("jacobi2d"), (8, 8), iters=0)


class TestValidation:
    """Solver APIs reject bad arguments with ValueError, eagerly."""

    @pytest.mark.parametrize("tol", [0.0, -1e-8, float("nan")])
    def test_bad_tol(self, tol):
        with pytest.raises(ValueError):
            jacobi_poisson(np.zeros((8, 8)), tol=tol)
        with pytest.raises(ValueError):
            richardson(
                np.zeros((8, 8)), named_stencil("jacobi2d"), tol=tol
            )

    @pytest.mark.parametrize("max_iter", [0, -5])
    def test_bad_max_iter(self, max_iter):
        with pytest.raises(ValueError):
            jacobi_poisson(np.zeros((8, 8)), max_iter=max_iter)

    def test_bad_history_limit(self):
        with pytest.raises(ValueError):
            jacobi_poisson(
                np.zeros((8, 8)), record_history=True, history_limit=0
            )

    def test_history_ring_keeps_tail(self, rng):
        rhs = rng.standard_normal((12, 12))
        res = jacobi_poisson(
            rhs,
            tol=1e-14,
            max_iter=50,
            record_history=True,
            history_limit=8,
        )
        assert res.iterations == 50  # exact count survives bounding
        assert len(res.residual_history) == 8
        assert res.residual_history[-1] == res.residual


class TestPlanExecutor:
    """The cached-plan executor behind solver sessions."""

    def test_matches_spider_pipeline(self, rng):
        spec = named_stencil("heat2d")
        grid = Grid.random((24, 24), rng)
        ref = Spider(spec).run(grid)
        with PlanExecutor(mac_threads=1) as ex:
            out = ex(spec, grid)
            again = ex(spec, grid)
        assert np.array_equal(out, ref)
        assert out.tobytes() == again.tobytes()  # reruns are bit-stable

    def test_plans_are_cached_across_calls(self, rng):
        spec = named_stencil("heat2d")
        with PlanExecutor(mac_threads=1) as ex:
            for _ in range(4):
                ex(spec, Grid.random((16, 16), rng))
            stats = ex.stats()
        assert stats.misses == 1
        assert stats.hits == 3

    def test_default_executor_is_shared(self):
        assert default_plan_executor() is default_plan_executor()

    def test_solver_drivers_accept_plan_executor(self, rng):
        rhs = rng.standard_normal((16, 16))
        a = jacobi_poisson(rhs, tol=1e-9, max_iter=5000)
        with PlanExecutor(mac_threads=1) as ex:
            b = jacobi_poisson(rhs, executor=ex, tol=1e-9, max_iter=5000)
        assert b.converged == a.converged
        assert b.iterations == a.iterations
        assert np.allclose(a.solution, b.solution, atol=1e-7)


class TestMultigridSolve:
    """The V-cycle driver solver sessions are built on."""

    @pytest.mark.parametrize(
        "shape", [(63,), (31, 31), (15, 15, 15)], ids=["1d", "2d", "3d"]
    )
    def test_v_cycle_converges_fast(self, shape, rng):
        spec = poisson_operator_spec(len(shape))
        rhs = rng.standard_normal(shape)
        res = multigrid.solve(spec, rhs, tol=1e-8, max_iters=30)
        assert res.converged
        assert res.iterations <= 20  # textbook multigrid, not smoothing
        assert _poisson_residual(res.solution, rhs) < 1e-7

    def test_v_cycle_beats_smoother_chain(self, rng):
        spec = poisson_operator_spec(2)
        rhs = rng.standard_normal((31, 31))
        mg = multigrid.solve(spec, rhs, tol=1e-6, max_iters=50)
        jac = multigrid.solve(
            spec, rhs, tol=1e-6, max_iters=50, cycle="jacobi"
        )
        assert mg.converged
        assert mg.iterations < 50
        assert mg.residual < jac.residual

    def test_red_black_beats_weighted_jacobi(self, rng):
        spec = poisson_operator_spec(2)
        rhs = rng.standard_normal((31, 31))
        kw = dict(tol=1e-12, max_iters=40)
        jac = multigrid.solve(spec, rhs, cycle="jacobi", **kw)
        rb = multigrid.solve(spec, rhs, cycle="rb", **kw)
        assert rb.residual < jac.residual

    def test_solve_validation_mirrors_iteration_args(self):
        spec = poisson_operator_spec(2)
        rhs = np.zeros((31, 31))
        for kwargs in [
            dict(tol=0.0),
            dict(max_iters=0),
            dict(cycle="w"),
            dict(smoother="sor"),
            dict(omega=-0.5),
            dict(x0=np.zeros((9, 9))),
        ]:
            with pytest.raises(ValueError):
                multigrid.solve(spec, rhs, **kwargs)
