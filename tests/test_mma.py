"""Tests for dense MMA semantics."""

import numpy as np
import pytest

from repro.sptc.instruction import InstructionStream
from repro.sptc.mma import (
    MMA_M16N8K8,
    MMA_M16N8K16,
    MmaPrecision,
    MmaShape,
    mma_dense,
)


class TestShapes:
    def test_names(self):
        assert MMA_M16N8K16.name == "m16n8k16"
        assert MMA_M16N8K8.name == "m16n8k8"

    def test_flops(self):
        assert MMA_M16N8K16.flops == 2 * 16 * 8 * 16


class TestSemantics:
    def test_exact_matches_numpy(self, rng):
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 8))
        c = rng.standard_normal((16, 8))
        d = mma_dense(a, b, c, precision=MmaPrecision.EXACT)
        assert np.allclose(d, a @ b + c)

    def test_no_accumulator(self, rng):
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 8))
        assert np.allclose(
            mma_dense(a, b, precision=MmaPrecision.EXACT), a @ b
        )

    def test_fp16_rounds_inputs(self):
        # a value not representable in fp16 gets rounded before the MAC
        a = np.zeros((16, 16))
        a[0, 0] = 1.0 + 2**-13  # rounds to 1.0 in fp16
        b = np.zeros((16, 8))
        b[0, 0] = 1.0
        d = mma_dense(a, b, precision=MmaPrecision.FP16)
        assert d[0, 0] == np.float32(1.0)

    def test_fp16_accumulates_fp32(self, rng):
        a = rng.standard_normal((16, 16)).astype(np.float16).astype(np.float64)
        b = rng.standard_normal((16, 8)).astype(np.float16).astype(np.float64)
        d = mma_dense(a, b, precision=MmaPrecision.FP16)
        assert d.dtype == np.float32
        # float32 accumulation over k=16 → a few ulps of drift vs float64
        assert np.allclose(d, (a @ b).astype(np.float32), rtol=1e-5, atol=1e-6)

    def test_k8_variant(self, rng):
        a = rng.standard_normal((16, 8))
        b = rng.standard_normal((8, 8))
        d = mma_dense(a, b, shape=MMA_M16N8K8, precision=MmaPrecision.EXACT)
        assert np.allclose(d, a @ b)


class TestValidation:
    def test_wrong_a_shape(self, rng):
        with pytest.raises(ValueError, match="A must be"):
            mma_dense(np.zeros((8, 16)), np.zeros((16, 8)))

    def test_wrong_b_shape(self):
        with pytest.raises(ValueError, match="B must be"):
            mma_dense(np.zeros((16, 16)), np.zeros((8, 8)))

    def test_wrong_c_shape(self):
        with pytest.raises(ValueError, match="C must be"):
            mma_dense(np.zeros((16, 16)), np.zeros((16, 8)), np.zeros((8, 8)))

    def test_bad_precision(self):
        with pytest.raises(ValueError, match="precision"):
            mma_dense(np.zeros((16, 16)), np.zeros((16, 8)), precision="fp8")


class TestInstrumentation:
    def test_issue_recorded(self, rng):
        stream = InstructionStream()
        mma_dense(
            rng.standard_normal((16, 16)),
            rng.standard_normal((16, 8)),
            stream=stream,
        )
        assert stream.count("mma") == 1
        assert stream.count_detail("mma", "m16n8k16") == 1
