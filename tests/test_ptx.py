"""Tests for the pseudo-PTX rendering of the Table-3 claim."""

import pytest

from repro.gpu.ptx import compare_variants, opcode_stream, render_inner_loop


class TestRendering:
    @pytest.mark.parametrize("radius", [3, 7, 11])
    def test_identical_opcode_streams(self, radius):
        """Table 3 in code form: with and without row swapping, the
        generated instruction sequence has identical opcodes."""
        a, b, same = compare_variants(radius)
        assert same
        assert len(a) == len(b)

    def test_only_immediates_differ(self):
        a, b, _ = compare_variants(7)
        differing = [
            (x, y) for x, y in zip(a, b) if (x.opcode, x.operands) != (y.opcode, y.operands)
        ]
        assert differing, "the swap must change some immediates"
        for x, y in differing:
            assert x.opcode == y.opcode == "iadd.s32"

    def test_mma_sp_issue_count(self):
        # Box-2D7R: padded width 32 -> two mma.sp per n-tile (paper §3.2)
        lines = render_inner_loop(7, swapped=True)
        mma = [l for l in lines if l.opcode.startswith("mma.sp")]
        assert len(mma) == 2

    def test_load_count(self):
        # 4 B-fragment loads per k-tile
        lines = render_inner_loop(3, swapped=True)
        loads = [l for l in lines if l.opcode == "ld.shared.b16"]
        assert len(loads) == 4

    def test_unfoldable_radius_raises(self):
        with pytest.raises(ValueError):
            render_inner_loop(2, swapped=True)

    def test_opcode_stream_helper(self):
        lines = render_inner_loop(3, swapped=False)
        ops = opcode_stream(lines)
        assert ops[0] == "and.b32"
        assert "mma.sp.sync.aligned.m16n8k16.row.col.f32.f16.f16.f32" in ops
