"""Fused single-GEMM fast path: bit-identity oracle + workspace arena.

The fused plan (`K_all` stacked at compile time, one windowing pass, one
ordered GEMM per line block, plan-owned workspaces) must be bit-identical
to the seed per-row fast path, which is kept verbatim as
``SpiderExecutor._reference_run``.  These tests sweep the equivalence
matrix — dims × shape family × radius × precision × batch size, including
line lengths that are not a multiple of L — and pin the arena's
zero-allocation steady state.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import (
    build_fused_operator,
    encode_kernel_row,
    stack_encoded_rows,
)
from repro.core.executor import SpiderExecutor
from repro.core.pipeline import Spider, SpiderVariant, build_compile_plan
from repro.sptc.formats import Sparse24Matrix
from repro.stencil import (
    BoundaryCondition,
    Grid,
    make_box_kernel,
    make_star_kernel,
    naive_stencil,
    named_stencil,
)


def _make(dims, r, kind, rng):
    make = make_box_kernel if kind == "box" else make_star_kernel
    return make(dims, r, rng)


# ----------------------------------------------------------------------
# Bit-identity oracle: fused plan == seed per-row path
# ----------------------------------------------------------------------

EQUIVALENCE_MATRIX = [
    # (dims, radius, kind, shape) — shapes include non-multiple-of-L tails
    (1, 1, "box", (41,)),
    (1, 2, "star", (130,)),
    (1, 3, "box", (97,)),
    (2, 1, "box", (23, 41)),
    (2, 1, "star", (16, 16)),
    (2, 2, "box", (20, 33)),
    (2, 2, "star", (19, 27)),
    (2, 3, "box", (17, 40)),
    (2, 3, "star", (21, 35)),
    (3, 1, "box", (7, 9, 11)),
    (3, 1, "star", (8, 8, 8)),
    (3, 2, "box", (9, 11, 13)),
    (3, 2, "star", (6, 10, 14)),
    (3, 3, "star", (9, 9, 17)),
]


@pytest.mark.parametrize("dims,r,kind,shape", EQUIVALENCE_MATRIX)
@pytest.mark.parametrize("precision", ["exact", "fp16"])
def test_fused_bit_identical_to_reference(dims, r, kind, shape, precision, rng):
    spec = _make(dims, r, kind, rng)
    ex = SpiderExecutor(spec, precision)
    for batch in (1, 3):
        grids = [Grid.random(shape, rng) for _ in range(batch)]
        ref = ex._reference_run(grids)
        got = ex.run_batch(grids)
        assert got.dtype == ref.dtype
        assert np.array_equal(ref, got), (dims, r, kind, shape, precision, batch)


@pytest.mark.parametrize(
    "bc",
    [
        BoundaryCondition.ZERO,
        BoundaryCondition.PERIODIC,
        BoundaryCondition.REFLECT,
        BoundaryCondition.NEAREST,
    ],
)
def test_fused_bit_identical_across_boundary_conditions(bc, rng):
    spec = make_box_kernel(2, 2, rng)
    ex = SpiderExecutor(spec)
    grids = [Grid.random((19, 27), rng, bc) for _ in range(2)]
    assert np.array_equal(ex._reference_run(grids), ex.run_batch(grids))


@given(
    dims=st.integers(1, 3),
    r=st.integers(1, 3),
    kind=st.sampled_from(["box", "star"]),
    batch=st.integers(1, 4),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=40, deadline=None)
def test_fused_bit_identity_property(dims, r, kind, batch, seed):
    rng = np.random.default_rng(seed)
    spec = _make(dims, r, kind, rng)
    sizes = rng.integers(3 if dims < 3 else 4, 28 if dims < 3 else 12, dims)
    if kind == "star":  # REFLECT-style minimum not needed; keep sides sane
        sizes = np.maximum(sizes, 2)
    shape = tuple(int(s) for s in sizes)
    precision = "fp16" if seed % 2 else "exact"
    ex = SpiderExecutor(spec, precision)
    grids = [Grid.random(shape, rng) for _ in range(batch)]
    assert np.array_equal(ex._reference_run(grids), ex.run_batch(grids))


@pytest.mark.parametrize("precision", ["exact", "fp16"])
def test_fused_bit_identical_single_column_gemm(precision, rng):
    """Regression: grids small enough that a line block is ONE GEMM column
    (n_lines * chunks == 1) must still match the oracle bit-for-bit.

    einsum's single-output-column case degenerates into its unrolled
    inner-product kernel, whose reduction grouping differs from the
    >=2-column kernel at the last ulp; the fused operator always padded
    around that, but the per-row reference's ``sparse_matmul`` used to
    call it unpadded (found by hypothesis: 1D r=3 box, n=5, seed 44).
    """
    for r in (1, 2, 3):
        for n in range(3, 10):
            spec = make_box_kernel(1, r, rng)
            ex = SpiderExecutor(spec, precision)
            grids = [Grid.random((n,), rng)]
            assert np.array_equal(
                ex._reference_run(grids), ex.run_batch(grids)
            ), (r, n)


def test_fused_bit_identical_across_batch_rows_chunking(rng):
    """Line-block boundaries must not perturb a single bit."""
    spec = make_box_kernel(2, 2, rng)
    grids = [Grid.random((24, 20), rng) for _ in range(3)]
    a = SpiderExecutor(spec, batch_rows=7).run_batch(grids)
    b = SpiderExecutor(spec, batch_rows=512).run_batch(grids)
    assert np.array_equal(a, b)


def test_tc_variant_fused_consistency(rng):
    """The dense-TC ablation is batch-invariant and matches its reference
    to GEMM rounding (the seed TC path multiplies through the platform
    BLAS, whose per-element order is shape-dependent — the very effect the
    ordered SpTC kernel is built to avoid)."""
    spec = make_box_kernel(2, 3, rng)
    ex = SpiderExecutor(spec, use_sptc=False)
    grids = [Grid.random((24, 32), rng) for _ in range(4)]
    per_grid = np.stack([ex.run(g) for g in grids])
    fused = ex.run_batch(grids)
    assert np.array_equal(per_grid, fused)
    assert np.allclose(ex._reference_run(grids), fused, rtol=1e-12, atol=0)


def test_fp16_accumulates_float32_without_round_trip(rng):
    """Numerics contract: fp16 results are float32 end-to-end."""
    spec = make_box_kernel(2, 1, rng)
    ex = SpiderExecutor(spec, "fp16")
    g = Grid.random((16, 32), rng)
    out = ex.run(g)
    assert out.dtype == np.float32
    ref = naive_stencil(spec, g)
    rel = np.abs(out - ref) / (np.abs(ref) + 1.0)
    assert rel.max() < 2e-2
    # the reference oracle shares the contract (float32 accumulator)
    assert ex._reference_run([g]).dtype == np.float32


# ----------------------------------------------------------------------
# Compile-time stacking artifacts
# ----------------------------------------------------------------------


def test_stacked_operator_geometry(rng):
    spec = make_box_kernel(2, 2, rng)
    ex = SpiderExecutor(spec)
    op = ex.fused_operator
    assert op.m == len(ex._encoded) * ex.L
    stacked = stack_encoded_rows(ex._encoded)
    assert isinstance(stacked, Sparse24Matrix)
    assert stacked.m == op.m
    assert np.array_equal(stacked.values, op.sparse.values)
    assert np.array_equal(stacked.positions, op.sparse.positions)


def test_selection_expand_equals_swapped_matrix(rng):
    """Compile-time selection through the precomputed index tensor
    reproduces the dense swapped matrix exactly."""
    for r in (1, 2, 3):
        row = rng.standard_normal(2 * r + 1)
        enc = encode_kernel_row(row)
        assert np.array_equal(enc.sparse.selection_expand(), enc.swapped_matrix)


def test_selection_indices_cached(rng):
    enc = encode_kernel_row(rng.standard_normal(5))
    a = enc.sparse.selection_indices()
    assert enc.sparse.selection_indices() is a  # computed once per plan


def test_star_rows_compacted(rng):
    """Structurally-zero kernel rows (star corners) are dropped from the
    compiled operator — fewer GEMM rows, same results."""
    spec = make_star_kernel(3, 1, rng)
    op = SpiderExecutor(spec).fused_operator
    assert op.m_active < op.m
    assert len(op.active_kernel_rows) < op.n_rows


def test_fused_issue_accounting_packs_tiles(rng):
    """The stacked operator needs fewer mma.sp issues than the per-row
    loop: ragged L-row operands each round up to a full m16 tile."""
    spec = make_box_kernel(2, 2, rng)
    g = Grid.random((24, 24), rng)
    fused_ex = SpiderExecutor(spec)
    fused_ex.run(g)
    fused_issues = fused_ex.stream.count("mma.sp")
    ref_ex = SpiderExecutor(spec)
    ref_ex._reference_run([g])
    ref_issues = ref_ex.stream.count("mma.sp")
    assert 0 < fused_issues < ref_issues


def test_build_fused_operator_validates(rng):
    with pytest.raises(ValueError):
        build_fused_operator([], "exact")
    enc1 = encode_kernel_row(rng.standard_normal(3))
    enc3 = encode_kernel_row(rng.standard_normal(7))
    with pytest.raises(ValueError, match="disagree"):
        build_fused_operator([enc1, enc3], "exact")


# ----------------------------------------------------------------------
# Workspace arena: zero large allocations in steady state
# ----------------------------------------------------------------------


def test_workspace_reused_across_calls(rng):
    spec = make_box_kernel(2, 2, rng)
    ex = SpiderExecutor(spec)
    grids = [Grid.random((32, 40), rng) for _ in range(3)]
    ex.run_batch(grids)
    assert ex._workspace_builds == 1
    ws = next(iter(ex._workspaces.values()))
    buffers = (ws.padded, ws.x_flat, ws.y_flat, ws.acc, ws.gather_flat)
    for _ in range(3):
        ex.run_batch([Grid.random((32, 40), rng) for _ in range(3)])
    assert ex._workspace_builds == 1  # steady state: no arena rebuilds
    ws2 = next(iter(ex._workspaces.values()))
    assert ws2 is ws
    for a, b in zip(buffers, (ws2.padded, ws2.x_flat, ws2.y_flat, ws2.acc, ws2.gather_flat)):
        assert a is b  # the same buffers, not reallocations


def test_workspace_grows_once_for_mixed_batch_sizes(rng):
    """Workspaces are keyed by shape and sized for the largest batch:
    variable coalesced batch sizes reuse one arena (prefix views) with
    bit-identical results."""
    spec = named_stencil("heat2d")
    ex = SpiderExecutor(spec)
    shape = (24, 24)
    ex.run_batch([Grid.random(shape, rng) for _ in range(4)])
    builds = ex._workspace_builds
    for batch in (1, 3, 2, 4, 1):
        grids = [Grid.random(shape, rng) for _ in range(batch)]
        assert np.array_equal(ex._reference_run(grids), ex.run_batch(grids))
    assert ex._workspace_builds == builds


def test_workspace_per_geometry_and_lru_bound(rng):
    spec = make_box_kernel(2, 1, rng)
    ex = SpiderExecutor(spec)
    for n in range(8, 8 + 2 * (SpiderExecutor.MAX_WORKSPACES + 2), 2):
        ex.run(Grid.random((n, n), rng))
    assert len(ex._workspaces) <= SpiderExecutor.MAX_WORKSPACES


def test_workspace_nbytes_reported_through_plan_cache(rng):
    from repro.serve import PlanCache, plan_key_for

    spec = named_stencil("heat2d")
    cache = PlanCache(capacity=4)
    key = plan_key_for(spec)
    plan = cache.get_or_build(key, spec=spec)
    plan.executor.run(Grid.random((16, 16), rng))
    stats = cache.stats()
    assert stats.workspace_bytes > 0
    assert stats.workspace_bytes == plan.workspace_nbytes()


def test_run_batch_split_results_own_their_memory(rng):
    spec = named_stencil("heat2d")
    ex = SpiderExecutor(spec)
    grids = [Grid.random((16, 20), rng) for _ in range(3)]
    outs = ex.run_batch_split(grids)
    assert all(o.flags["OWNDATA"] and o.flags["C_CONTIGUOUS"] for o in outs)
    kept = [o.copy() for o in outs]
    # a later batch through the same plan must not disturb earlier results
    ex.run_batch_split([Grid.random((16, 20), rng) for _ in range(3)])
    for a, b in zip(outs, kept):
        assert np.array_equal(a, b)
    for o, g in zip(outs, grids):
        assert np.array_equal(o, ex.run(g))


def test_run_batch_steps_matches_resubmit_chain(rng):
    """The chained multi-sweep is byte-identical to running one sweep,
    re-wrapping each result in a Grid with the same BC, and resubmitting —
    across dims, BCs (the ZERO center-only repad fast path included),
    batch sizes and precisions."""
    cases = [(1, (33,)), (2, (12, 18)), (3, (6, 7, 9))]
    for precision in ("exact", "fp16"):
        for dims, shape in cases:
            spec = make_box_kernel(dims, 1, rng)
            ex = SpiderExecutor(spec, precision)
            for bc in BoundaryCondition:
                for batch in (1, 3):
                    grids = [
                        Grid.random(shape, rng, bc) for _ in range(batch)
                    ]
                    chained = ex.run_batch_steps(grids, 3)
                    cur = grids
                    for _ in range(2):
                        outs = ex.run_batch(cur)
                        cur = [
                            Grid(outs[b], bc) for b in range(batch)
                        ]
                    expect = ex.run_batch_split(cur)
                    for a, b in zip(chained, expect):
                        assert a.dtype == b.dtype
                        assert a.tobytes() == b.tobytes(), (
                            precision, dims, bc, batch,
                        )
    with pytest.raises(ValueError):
        ex.run_batch_steps([Grid.random((6, 7, 9), rng)], 0)


def test_pad_into_matches_np_pad(rng):
    """The allocation-free halo fill is bitwise np.pad for every BC."""
    for dims, shape in [(1, (13,)), (2, (7, 11)), (3, (5, 6, 7))]:
        for r in (1, 2, 3):
            spec = make_box_kernel(dims, r, rng)
            ex = SpiderExecutor(spec)
            for bc in BoundaryCondition:
                if bc is BoundaryCondition.REFLECT and any(
                    s < r + 1 for s in shape
                ):
                    continue
                g = Grid.random(shape, rng, bc)
                want = g.padded(r)
                n2r = shape[-1] + 2 * r
                dest = np.full(
                    tuple(s + 2 * r for s in shape[:-1]) + (n2r + 5,), np.nan
                )
                ex._pad_into(g.data, g.bc, dest)
                assert np.array_equal(dest[..., :n2r], want), (dims, r, bc)
                assert np.all(dest[..., n2r:] == 0.0)


def test_pad_into_periodic_halo_wider_than_grid(rng):
    """Wrap padding must stay exact when the halo exceeds the period."""
    spec = make_box_kernel(2, 3, rng)
    ex = SpiderExecutor(spec)
    g = Grid.random((2, 9), rng, BoundaryCondition.PERIODIC)
    want = g.padded(3)
    dest = np.empty((8, 15 + 9))
    ex._pad_into(g.data, g.bc, dest)
    assert np.array_equal(dest[..., :15], want)


# ----------------------------------------------------------------------
# Plan integration
# ----------------------------------------------------------------------


def test_compile_plan_exposes_fused_operator(rng):
    spec = named_stencil("heat2d")
    plan = build_compile_plan(spec)
    assert plan.fused_operator is plan.executor.fused_operator
    assert plan.workspace_nbytes() >= plan.fused_operator.nbytes()


@pytest.mark.parametrize("variant", list(SpiderVariant))
def test_spider_variants_still_equivalent(variant, rng):
    spec = make_star_kernel(2, 2, rng)
    g = Grid.random((18, 23), rng)
    out = Spider(spec, variant=variant).run(g)
    assert np.allclose(out, naive_stencil(spec, g))
