"""Batch fusion (`run_batch`) equivalence and coalescing-queue policy."""

import threading
import time

import numpy as np
import pytest

from repro.core import Spider, SpiderVariant
from repro.core.executor import SpiderExecutor
from repro.serve import BatchQueue, ServeRequest, plan_key_for
from repro.stencil import (
    Grid,
    make_box_kernel,
    make_star_kernel,
    named_stencil,
)


# ----------------------------------------------------------------------
# run_batch
# ----------------------------------------------------------------------

BATCH_CASES = [
    ("heat1d", (96,)),
    ("wave1d", (130,)),
    ("heat2d", (20, 33)),
    ("blur2d", (17, 40)),
    ("wave2d", (24, 24)),
    ("heat3d", (9, 11, 13)),
    ("blur3d", (8, 8, 8)),
]


@pytest.mark.parametrize("name,shape", BATCH_CASES)
def test_run_batch_bit_identical_to_per_grid_run(name, shape, rng):
    ex = SpiderExecutor(named_stencil(name))
    grids = [Grid.random(shape, rng) for _ in range(5)]
    ref = np.stack([ex.run(g) for g in grids])
    got = ex.run_batch(grids)
    assert got.shape == (5,) + shape
    assert np.array_equal(ref, got)


@pytest.mark.parametrize("variant", list(SpiderVariant))
@pytest.mark.parametrize("precision", ["exact", "fp16"])
def test_run_batch_all_variants_and_precisions(variant, precision, rng):
    spec = make_box_kernel(2, 3, rng, symmetric=True)
    sp = Spider(spec, precision, variant)
    grids = [Grid.random((24, 32), rng) for _ in range(4)]
    ref = np.stack([sp.run(g) for g in grids])
    got = sp.executor.run_batch(grids)
    assert got.dtype == ref.dtype
    assert np.array_equal(ref, got)


def test_run_batch_singleton_matches_run(rng):
    ex = SpiderExecutor(make_star_kernel(2, 2, rng))
    g = Grid.random((19, 27), rng)
    assert np.array_equal(ex.run_batch([g])[0], ex.run(g))


def test_run_batch_crosses_batch_rows_chunking(rng):
    """Fused batches spanning multiple batch_rows chunks stay exact."""
    ex = SpiderExecutor(named_stencil("heat2d"), batch_rows=16)
    grids = [Grid.random((24, 20), rng) for _ in range(3)]  # 72 lines, 5 chunks
    ref = np.stack([ex.run(g) for g in grids])
    assert np.array_equal(ref, ex.run_batch(grids))


def test_run_batch_input_validation(rng):
    ex = SpiderExecutor(named_stencil("heat2d"))
    with pytest.raises(ValueError):
        ex.run_batch([])
    with pytest.raises(ValueError):
        ex.run_batch([Grid.random((16,), rng)])  # 1D grid, 2D executor
    with pytest.raises(ValueError):
        ex.run_batch([Grid.random((16, 16), rng), Grid.random((16, 18), rng)])


# ----------------------------------------------------------------------
# BatchQueue
# ----------------------------------------------------------------------


def _req(spec, grid_shape, req_id=0, rng=None):
    rng = rng or np.random.default_rng(req_id)
    grid = Grid.random(grid_shape, rng)
    key = plan_key_for(spec, grid_shape=grid_shape)
    return ServeRequest(req_id, spec, grid, key, submitted_s=time.monotonic())


def test_queue_coalesces_same_key_only():
    q = BatchQueue(max_batch_size=8, max_wait_s=0.0)
    heat, blur = named_stencil("heat2d"), named_stencil("blur2d")
    reqs = [
        _req(heat, (16, 16), 0),
        _req(heat, (16, 16), 1),
        _req(blur, (16, 16), 2),
        _req(heat, (16, 16), 3),
    ]
    for r in reqs:
        q.put(r)
    first = q.get_batch()
    assert [r.req_id for r in first] == [0, 1, 3]
    second = q.get_batch()
    assert [r.req_id for r in second] == [2]
    assert len(q) == 0


def test_queue_respects_max_batch_size():
    q = BatchQueue(max_batch_size=2, max_wait_s=0.0)
    spec = named_stencil("heat2d")
    for i in range(5):
        q.put(_req(spec, (16, 16), i))
    sizes = [len(q.get_batch()) for _ in range(3)]
    assert sizes == [2, 2, 1]


def test_queue_shape_splits_batches():
    """Same spec, different grid shape -> different plan key -> no fusion."""
    q = BatchQueue(max_batch_size=8, max_wait_s=0.0)
    spec = named_stencil("heat2d")
    q.put(_req(spec, (16, 16), 0))
    q.put(_req(spec, (32, 32), 1))
    assert [r.req_id for r in q.get_batch()] == [0]
    assert [r.req_id for r in q.get_batch()] == [1]


def test_queue_waits_deadline_for_late_arrivals():
    q = BatchQueue(max_batch_size=4, max_wait_s=0.25)
    spec = named_stencil("heat2d")
    q.put(_req(spec, (16, 16), 0))

    def late_producer():
        time.sleep(0.03)
        q.put(_req(spec, (16, 16), 1))

    t = threading.Thread(target=late_producer)
    t.start()
    batch = q.get_batch()
    t.join()
    assert [r.req_id for r in batch] == [0, 1]


def test_queue_releases_early_when_full():
    q = BatchQueue(max_batch_size=2, max_wait_s=60.0)
    spec = named_stencil("heat2d")
    q.put(_req(spec, (16, 16), 0))
    q.put(_req(spec, (16, 16), 1))
    start = time.monotonic()
    batch = q.get_batch()
    assert len(batch) == 2
    assert time.monotonic() - start < 1.0  # did not sit out the deadline


def test_queue_serves_oldest_head_first_no_starvation():
    """A sustained hot key must not starve a colder key on the shard."""
    q = BatchQueue(max_batch_size=2, max_wait_s=0.0)
    heat, blur = named_stencil("heat2d"), named_stencil("blur2d")
    # arrival order: A0 A1 B2 A3 A4 — B arrives before A3/A4
    for spec, rid in [(heat, 0), (heat, 1), (blur, 2), (heat, 3), (heat, 4)]:
        q.put(_req(spec, (16, 16), rid))
    batches = [[r.req_id for r in q.get_batch()] for _ in range(3)]
    assert batches[0] == [0, 1]
    assert batches[1] == [2]  # B served before the younger A requests
    assert batches[2] == [3, 4]


def test_queue_full_key_preempts_older_coalescing_window():
    """A full batch releases immediately even while an older-headed key is
    still waiting out its coalescing deadline."""
    q = BatchQueue(max_batch_size=2, max_wait_s=30.0)
    heat, blur = named_stencil("heat2d"), named_stencil("blur2d")
    q.put(_req(heat, (16, 16), 0))  # older head, alone in its window
    q.put(_req(blur, (16, 16), 1))
    q.put(_req(blur, (16, 16), 2))  # blur is now full
    start = time.monotonic()
    first = q.get_batch()
    assert time.monotonic() - start < 1.0  # did not wait out heat's window
    assert [r.req_id for r in first] == [1, 2]
    q.close()
    assert [r.req_id for r in q.get_batch()] == [0]


def test_queue_close_semantics():
    q = BatchQueue(max_batch_size=4, max_wait_s=10.0)
    spec = named_stencil("heat2d")
    q.put(_req(spec, (16, 16), 0))
    q.close()
    assert [r.req_id for r in q.get_batch()] == [0]  # drains without waiting
    assert q.get_batch() is None
    with pytest.raises(RuntimeError):
        q.put(_req(spec, (16, 16), 1))


def test_queue_parameter_validation():
    with pytest.raises(ValueError):
        BatchQueue(max_batch_size=0)
    with pytest.raises(ValueError):
        BatchQueue(max_wait_s=-1.0)


def test_request_handle_lifecycle():
    spec = named_stencil("heat2d")
    req = _req(spec, (8, 8), 7)
    assert not req.done()
    assert req.latency_s is None
    with pytest.raises(TimeoutError):
        req.result(timeout=0.01)
    out = np.ones((8, 8))
    req._resolve(out, batch_size=3, started_s=req.submitted_s + 0.5,
                 finished_s=req.submitted_s + 1.0)
    assert req.done() and not req.failed
    assert req.result() is out
    assert req.batch_size == 3
    assert req.latency_s == pytest.approx(1.0)
    assert req.queue_wait_s == pytest.approx(0.5)

    failed = _req(spec, (8, 8), 8)
    failed._fail(ValueError("boom"), started_s=0.0, finished_s=0.0)
    assert failed.failed
    with pytest.raises(ValueError, match="boom"):
        failed.result()
