"""End-to-end span tracing: recorder semantics and cross-process propagation.

The tracer's contract has two halves.  Locally, ``SpanRecorder`` must be
safe to snapshot while other threads keep recording — never dropping or
double-counting a span — and must degrade by dropping its *oldest* spans
when a thread's ring fills.  Across the process backend, worker-side
spans travel as ``(name, offset-from-batch-start, duration)`` triples and
are re-anchored on the parent's monotonic clock (the PR-5 offset-free
scheme), so a trace from ``submit(steps=3)`` must come back parent-linked
with non-negative, parent-clock-consistent timestamps on both transports
and under spawn/forkserver start methods.
"""

import json
import os
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.serve import (
    SpanRecorder,
    StencilService,
    stage_totals,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.serve.tracing import EXECUTION_STAGES, execution_coverage
from repro.stencil import Grid, named_stencil

#: worker-side stages that must survive the IPC hop on the process backend
WORKER_STAGES = {"decode", "mac.gemm", "temporal_chain"}


def _serve_traced(backend, transport=None, n=8, steps=3):
    rng = np.random.default_rng(5)
    spec = named_stencil("heat2d")
    kwargs = {"transport": transport} if transport else {}
    with StencilService(
        workers=2,
        backend=backend,
        max_batch_size=4,
        max_wait_s=0.001,
        trace=True,
        **kwargs,
    ) as svc:
        reqs = [
            svc.submit(spec, Grid.random((16, 16), rng), steps=steps)
            for _ in range(n)
        ]
        svc.drain()
        spans = svc.trace_spans()
        stats = svc.stats()
    for r in reqs:
        r.result()
    return spans, stats


# ----------------------------------------------------------------------
# SpanRecorder semantics
# ----------------------------------------------------------------------


def test_recorder_disabled_is_a_noop():
    rec = SpanRecorder()
    assert rec.record_span("x", "t", 0.0, 1.0, trace_id=1) is None
    with rec.span("y", "t", trace_id=1) as sid:
        assert sid is None
    assert rec.snapshot() == ()


def test_recorder_records_and_links_spans():
    rec = SpanRecorder(enabled=True)
    trace_id, root = rec.new_ids()
    rec.record_span(
        "request", "requests", 0.0, 2.0, trace_id, span_id=root
    )
    child = rec.record_span(
        "mac", "shard-0", 0.5, 1.0, trace_id, parent_id=root
    )
    spans = rec.snapshot()
    assert [s.name for s in spans] == ["request", "mac"]
    assert spans[1].parent_id == root
    assert spans[1].span_id == child
    assert spans[0].trace_id == spans[1].trace_id == trace_id


def test_recorder_ring_drops_oldest_and_counts():
    rec = SpanRecorder(enabled=True, capacity_per_thread=16)
    for i in range(40):
        rec.record_span(f"s{i}", "t", float(i), 1.0, trace_id=1)
    spans = rec.snapshot()
    assert len(spans) == 16
    assert rec.dropped == 24
    # oldest dropped: the survivors are the 16 most recent
    assert [s.name for s in spans] == [f"s{i}" for i in range(24, 40)]


def test_recorder_clamps_negative_durations():
    rec = SpanRecorder(enabled=True)
    rec.record_span("x", "t", 1.0, -0.5, trace_id=1)
    assert rec.snapshot()[0].dur_s == 0.0


def test_snapshot_under_load_never_drops_or_double_counts():
    rec = SpanRecorder(enabled=True, capacity_per_thread=100_000)
    n_threads, per_thread = 6, 5_000
    start = threading.Barrier(n_threads + 1)
    stop = threading.Event()

    def produce():
        start.wait()
        for i in range(per_thread):
            rec.record_span("s", "t", float(i), 1.0, trace_id=1)

    threads = [threading.Thread(target=produce) for _ in range(n_threads)]
    for t in threads:
        t.start()
    start.wait()
    while any(t.is_alive() for t in threads):
        snap = rec.snapshot()
        # a snapshot taken mid-stream holds no duplicates...
        ids = [s.span_id for s in snap]
        assert len(ids) == len(set(ids))
    for t in threads:
        t.join()
    # ...and the final harvest has every span exactly once
    final = rec.drain()
    assert len(final) == n_threads * per_thread
    assert rec.dropped == 0
    assert rec.snapshot() == ()  # drain moved them out


# ----------------------------------------------------------------------
# end-to-end traces, thread backend
# ----------------------------------------------------------------------


def test_thread_backend_trace_covers_request_and_execution_stages():
    spans, stats = _serve_traced("thread")
    names = {s.name for s in spans}
    assert {"submit", "queue", "coalesce", "request", "resolve"} <= names
    assert {"mac.gemm", "temporal_chain", "plan_compile"} <= names
    roots = {s.span_id for s in spans if s.name == "request"}
    assert len(roots) == 8
    for s in spans:
        assert s.dur_s >= 0.0
        if s.name != "request":
            assert s.parent_id in roots, f"{s.name} span not parent-linked"
    # stats() surfaces the same spans as per-stage aggregates
    assert stats.stages["request"]["count"] == 8.0
    assert stats.stages["mac.gemm"]["total_s"] > 0.0


def test_trace_disabled_by_default_records_nothing():
    rng = np.random.default_rng(1)
    spec = named_stencil("heat2d")
    with StencilService(workers=1, backend="thread") as svc:
        svc.submit(spec, Grid.random((8, 8), rng), steps=2).result()
        assert svc.trace_spans() == ()
        assert svc.stats().stages == {}


def test_chrome_trace_export_is_loadable(tmp_path):
    out = tmp_path / "trace.json"
    with StencilService(workers=1, backend="thread", trace=True) as svc:
        svc.submit(
            named_stencil("heat2d"), Grid.random((8, 8)), steps=2
        ).result()
        n = svc.export_trace(str(out))
    doc = json.loads(out.read_text())
    assert validate_chrome_trace(doc) == n > 0
    events = doc["traceEvents"]
    # complete events carry µs timestamps relative to the trace start
    xs = [e for e in events if e["ph"] == "X"]
    assert min(e["ts"] for e in xs) == 0
    assert all(e["dur"] >= 0 for e in xs)
    assert any(e["ph"] == "M" and e["name"] == "process_name" for e in events)


def test_validate_chrome_trace_rejects_malformed():
    with pytest.raises(ValueError, match="traceEvents"):
        validate_chrome_trace({"foo": []})
    with pytest.raises(ValueError, match="missing name"):
        validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
    with pytest.raises(ValueError, match="pid/tid"):
        validate_chrome_trace({"traceEvents": [{"ph": "X", "name": "x"}]})
    bad = to_chrome_trace(())
    bad["traceEvents"].append(
        {"ph": "X", "name": "x", "ts": 0, "dur": -1, "pid": 1, "tid": 1}
    )
    with pytest.raises(ValueError, match="negative"):
        validate_chrome_trace(bad)


# ----------------------------------------------------------------------
# cross-process propagation (satellite d)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("transport", ["shm", "queue"])
def test_process_backend_spans_propagate_and_anchor(transport):
    t0 = time.monotonic()
    spans, stats = _serve_traced("process", transport=transport)
    t1 = time.monotonic()
    names = {s.name for s in spans}
    # parent-side batch stages and IPC accounting
    assert {"pack", "ipc", "unpack", "resolve"} <= names
    # worker-side spans crossed the process boundary
    assert WORKER_STAGES <= names, f"missing {WORKER_STAGES - names}"
    roots = {s.span_id for s in spans if s.name == "request"}
    assert len(roots) == 8
    for s in spans:
        # re-anchored on the parent monotonic clock: inside the run window
        assert t0 <= s.start_s <= s.start_s + s.dur_s <= t1, s.name
        if s.name != "request":
            assert s.parent_id in roots, f"{s.name} span not parent-linked"
    # worker spans nest inside the service window their batch reported
    svc_total = (
        stats.telemetry.service_ms["mean"]
        * stats.telemetry.service_ms["count"]
        / 1e3
    )
    covered = execution_coverage(spans, svc_total)
    assert 0.0 < covered, "no execution-stage time attributed"
    totals = stage_totals(spans)
    assert any(stage in totals for stage in EXECUTION_STAGES)


_TRACE_SCRIPT = """
import numpy as np
from repro.serve import StencilService, validate_chrome_trace, to_chrome_trace
from repro.stencil import Grid, named_stencil

rng = np.random.default_rng(0)
spec = named_stencil("heat2d")
with StencilService(
    workers=2,
    backend="process",
    transport="{transport}",
    max_batch_size=4,
    max_wait_s=0.001,
    trace=True,
) as svc:
    reqs = [
        svc.submit(spec, Grid.random((16, 16), rng), steps=3)
        for _ in range(8)
    ]
    svc.drain()
    spans = svc.trace_spans()
for r in reqs:
    r.result()
names = {{s.name for s in spans}}
assert {{"decode", "temporal_chain", "ipc", "pack"}} <= names, names
roots = {{s.span_id for s in spans if s.name == "request"}}
assert len(roots) == 8
assert all(s.start_s >= 0 and s.dur_s >= 0 for s in spans)
assert all(s.parent_id in roots for s in spans if s.name != "request")
validate_chrome_trace(to_chrome_trace(spans))
print("TRACED-OK", len(spans))
"""


@pytest.mark.parametrize("start_method", ["spawn", "forkserver"])
@pytest.mark.parametrize("transport", ["shm", "queue"])
def test_trace_propagation_under_start_method(start_method, transport):
    """Spans propagate under the heavyweight mp start methods too.

    Runs in a subprocess so ``REPRO_MP_START_METHOD`` is read by a fresh
    interpreter (the pool caches its context per process).
    """
    env = dict(os.environ)
    env["REPRO_MP_START_METHOD"] = start_method
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.run(
        [
            sys.executable,
            "-W",
            "error::UserWarning",
            "-c",
            _TRACE_SCRIPT.format(transport=transport),
        ],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert proc.returncode == 0, f"stdout={proc.stdout}\nstderr={proc.stderr}"
    assert "TRACED-OK" in proc.stdout
    assert "Traceback" not in proc.stderr


# ----------------------------------------------------------------------
# stage-tagged error accounting rides the same plumbing
# ----------------------------------------------------------------------


def test_execute_errors_are_stage_tagged():
    rng = np.random.default_rng(2)
    spec = named_stencil("heat2d")
    with StencilService(
        workers=1, backend="thread", max_wait_s=0.05, trace=True
    ) as svc:
        ok = svc.submit(spec, Grid.random((12, 12), rng))
        assert ok.result() is not None
        # force an executor failure by corrupting the request post-submit
        # (a None grid blows up inside execute_serve_batch, not pack)
        bad = svc.submit(spec, Grid.random((12, 12), rng))
        bad.grid = None
        svc.drain()
        stats = svc.stats()
    with pytest.raises(Exception):
        bad.result()
    assert stats.telemetry.errors == 1
    assert stats.telemetry.errors_by_stage.get("execute") == 1
