"""Tests for warp fragment layouts."""

import numpy as np
import pytest

from repro.sptc import fragments as fr


class TestPaperBMapping:
    def test_formula_matches_paper(self):
        # offset_row = 2*(lane%4) + 8*floor(i/2) + (i%2)
        for lane in range(32):
            rows = fr.b_fragment_rows_paper(lane)
            for i in range(4):
                assert rows[i] == 2 * (lane % 4) + 8 * (i // 2) + (i % 2)

    def test_lane_range_checked(self):
        with pytest.raises(ValueError):
            fr.b_fragment_rows_paper(32)

    def test_b_layout_covers_tile_exactly_once(self):
        seen = np.zeros((16, 8), dtype=int)
        for lane in range(32):
            for row, col in fr.b_fragment_coords(lane):
                seen[row, col] += 1
        assert (seen == 1).all()


class TestALayout:
    def test_covers_compressed_tile_once(self):
        seen = np.zeros((16, 8), dtype=int)
        for lane in range(32):
            for row, col in fr.a_fragment_coords(lane):
                seen[row, col] += 1
        assert (seen == 1).all()


class TestAccLayout:
    def test_covers_tile_once(self):
        seen = np.zeros((16, 8), dtype=int)
        for lane in range(32):
            for row, col in fr.acc_fragment_coords(lane):
                seen[row, col] += 1
        assert (seen == 1).all()


class TestDistributeCollect:
    def test_b_roundtrip(self, rng):
        b = rng.standard_normal((16, 8))
        assert np.array_equal(fr.collect_b(fr.distribute_b(b)), b)

    def test_acc_roundtrip(self, rng):
        c = rng.standard_normal((16, 8))
        assert np.array_equal(fr.collect_acc(fr.distribute_acc(c)), c)

    def test_a_distribution_consistent(self, rng):
        a = rng.standard_normal((16, 8))
        regs = fr.distribute_a(a)
        for lane in (0, 7, 31):
            coords = fr.a_fragment_coords(lane)
            assert np.array_equal(regs[lane], a[coords[:, 0], coords[:, 1]])

    def test_shape_checks(self):
        with pytest.raises(ValueError):
            fr.distribute_b(np.zeros((8, 8)))
        with pytest.raises(ValueError):
            fr.collect_acc(np.zeros((16, 8)))


class TestMetadataLanes:
    def test_selector_partitions_lanes(self):
        all_lanes = np.concatenate(
            [fr.metadata_fragment_lanes(s) for s in range(4)]
        )
        assert sorted(all_lanes.tolist()) == list(range(32))

    def test_eight_lanes_per_selector(self):
        for s in range(4):
            assert len(fr.metadata_fragment_lanes(s)) == 8

    def test_selector_range(self):
        with pytest.raises(ValueError):
            fr.metadata_fragment_lanes(4)
